// Package matching implements maximal matching under an *extended* nFSM
// model. The paper proves MIS and tree coloring in the pure model but
// notes that its efficient maximal-matching protocol "requires a small
// unavoidable modification of the nFSM model that goes beyond the scope
// of the current version of the paper". The obstruction is symmetry: a
// pure nFSM node broadcasts the same letter to all neighbors and reads
// only one-two-many counts, so it can never *address* the specific
// neighbor it wants to marry.
//
// The extension implemented here adds exactly two capabilities, both
// constant-size in spirit but port-aware:
//
//  1. targeted transmission — a node may send a letter through a single
//     port chosen uniformly at random among the ports currently showing a
//     given letter (rather than broadcasting to all neighbors);
//  2. port memory — a node may remember one port index (the prospective
//     partner) across rounds.
//
// Everything else follows the stone-age discipline: constant states,
// constant alphabet, one-two-many counting with b = 1, uniform random
// choices only.
//
// The protocol is a three-way handshake tournament in four-round phases:
// free nodes announce themselves; a coin splits them into proposers and
// listeners; a proposer sends PROPOSE into one uniformly random
// FREE-showing port; a listener answers exactly one PROPOSE-showing port
// with ACCEPT; a proposer whose proposal port shows ACCEPT replies
// CONFIRM and both ends are matched. Mismatched proposals dissolve and
// the nodes retry in the next phase. A free node with no free neighbors
// terminates unmatched; a node pair terminates matched — together these
// outputs form a maximal matching.
package matching

import (
	"errors"
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/protocol"
	"stoneage/internal/xrand"
)

// The protocol self-registers with its bespoke engine: Solve below is
// not hosted on the nFSM engines (the port-aware extension has no
// synchronizer route), so the descriptor is sync-only and the shared
// runner dispatches straight to it.
var _ = protocol.Register(&protocol.Descriptor{
	Name:    "matching",
	Summary: "maximal matching under the extended nFSM model (targeted transmission + port memory)",
	Caps:    protocol.CapSyncOnly | protocol.CapExtended,
	Solve: func(_ protocol.Args, g *graph.Graph, seed uint64, maxRounds int) (*protocol.Run, error) {
		res, err := Solve(g, seed, maxRounds)
		if err != nil {
			return nil, err
		}
		return &protocol.Run{Output: protocol.Mate(res.Mate), Rounds: res.Rounds}, nil
	},
	Check: func(_ protocol.Args, g *graph.Graph, out protocol.Output) error {
		return g.IsMaximalMatching(out.(protocol.Mate))
	},
	Mutate: protocol.BreakMate,
})

// ErrNoConvergence mirrors the engine's budget error.
var ErrNoConvergence = errors.New("matching: no output configuration within budget")

// The extended protocol's letters.
const (
	letFree byte = iota
	letMatched
	letPropose
	letAccept
	letConfirm
	numLetters
)

// Node modes.
const (
	modeFree      byte = iota
	modeProposer       // sent PROPOSE, awaiting ACCEPT on the proposal port
	modeListener       // flipped listener this phase
	modeAccepted       // sent ACCEPT, awaiting CONFIRM on the accepted port
	modeNewlyWed       // matched this phase, announcement pending
	modeMatched        // output: matched through partner port
	modeUnmatched      // output: no free neighbor remained
)

// Result reports a matching run.
type Result struct {
	// Mate[v] is the matched partner of v, or -1.
	Mate []int
	// Rounds is the number of synchronous rounds used.
	Rounds int
	// Phases is Rounds/4 rounded up.
	Phases int
}

type node struct {
	mode    byte
	partner int // port index of the prospective/actual partner, -1 if none
}

// Solve runs the extended-model maximal matching protocol on g.
// maxRounds of zero selects 1<<20.
func Solve(g *graph.Graph, seed uint64, maxRounds int) (*Result, error) {
	n := g.N()
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}

	nodes := make([]node, n)
	for v := range nodes {
		nodes[v] = node{mode: modeFree, partner: -1}
	}
	// The port state lives in the graph's CSR layout: the ports of node
	// v occupy ports[off[v]:off[v+1]] in neighbor order, and the
	// flattened reverse-port table routes transmissions without the
	// nested revPort slices the engine used to rebuild per run. The
	// initial letter is FREE (all nodes start free).
	csr := g.CSR()
	off, nbr, rev := csr.NbrOff, csr.NbrDat, csr.RevPort
	ports := make([]byte, len(nbr))
	for k := range ports {
		ports[k] = letFree
	}
	var showBuf []int // scratch for portsShowing, reused across nodes

	// Transmission buffers for the current round: target port (-1 for
	// broadcast, -2 for silence) plus letter.
	target := make([]int, n)
	letter := make([]byte, n)

	outputs := 0
	for round := 1; round <= maxRounds; round++ {
		phaseRound := (round-1)%4 + 1
		for v := 0; v < n; v++ {
			target[v], letter[v] = -2, 0
			nd := &nodes[v]
			src := xrand.NewStream(seed, uint64(v), uint64(round))
			switch phaseRound {
			case 1: // announcements
				switch nd.mode {
				case modeNewlyWed:
					nd.mode = modeMatched
					outputs++
					target[v], letter[v] = -1, letMatched
				case modeFree:
					target[v], letter[v] = -1, letFree
				}
			case 2: // role coin and proposals
				if nd.mode != modeFree {
					break
				}
				free := portsShowing(showBuf[:0], ports[off[v]:off[v+1]], letFree)
				showBuf = free
				if len(free) == 0 {
					nd.mode = modeUnmatched
					outputs++
					break
				}
				if src.Bool() {
					nd.mode = modeProposer
					nd.partner = free[src.Intn(len(free))]
					target[v], letter[v] = nd.partner, letPropose
				} else {
					nd.mode = modeListener
				}
			case 3: // listeners answer one proposal
				if nd.mode != modeListener {
					break
				}
				proposals := portsShowing(showBuf[:0], ports[off[v]:off[v+1]], letPropose)
				showBuf = proposals
				if len(proposals) == 0 {
					nd.mode = modeFree
					break
				}
				nd.mode = modeAccepted
				nd.partner = proposals[src.Intn(len(proposals))]
				target[v], letter[v] = nd.partner, letAccept
			case 4: // proposers confirm accepted proposals
				switch nd.mode {
				case modeProposer:
					if ports[off[v]+int32(nd.partner)] == letAccept {
						nd.mode = modeNewlyWed
						target[v], letter[v] = nd.partner, letConfirm
					} else {
						nd.mode = modeFree
						nd.partner = -1
					}
				}
			}
		}
		// Deliver this round's transmissions.
		for v := 0; v < n; v++ {
			switch target[v] {
			case -2:
			case -1:
				for k := off[v]; k < off[v+1]; k++ {
					ports[off[nbr[k]]+rev[k]] = letter[v]
				}
			default:
				k := off[v] + int32(target[v])
				ports[off[nbr[k]]+rev[k]] = letter[v]
			}
		}
		// Round 4 epilogue for accepters: the CONFIRM letter lands in the
		// port during round 4, and the accepter resolves at the start of
		// round 1; fold it in here so phases stay at four rounds.
		if phaseRound == 4 {
			for v := 0; v < n; v++ {
				nd := &nodes[v]
				if nd.mode != modeAccepted {
					continue
				}
				if ports[off[v]+int32(nd.partner)] == letConfirm {
					nd.mode = modeNewlyWed
				} else {
					nd.mode = modeFree
					nd.partner = -1
				}
			}
		}
		if outputs == n {
			return finish(g, nodes, round)
		}
	}
	return nil, fmt.Errorf("%w after %d rounds", ErrNoConvergence, maxRounds)
}

func portsShowing(out []int, ports []byte, letter byte) []int {
	for i, l := range ports {
		if l == letter {
			out = append(out, i)
		}
	}
	return out
}

func finish(g *graph.Graph, nodes []node, rounds int) (*Result, error) {
	mate := make([]int, len(nodes))
	for v := range nodes {
		switch nodes[v].mode {
		case modeMatched:
			mate[v] = g.Neighbors(v)[nodes[v].partner]
		case modeUnmatched:
			mate[v] = -1
		default:
			return nil, fmt.Errorf("matching: node %d ended in mode %d", v, nodes[v].mode)
		}
	}
	return &Result{Mate: mate, Rounds: rounds, Phases: (rounds + 3) / 4}, nil
}
