package matching

import (
	"errors"
	"math"
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

func TestSolveProducesMaximalMatching(t *testing.T) {
	src := xrand.New(1)
	workloads := map[string]*graph.Graph{
		"single":    graph.New(1),
		"pair":      graph.Path(2),
		"isolated":  graph.New(10),
		"path-even": graph.Path(20),
		"path-odd":  graph.Path(21),
		"cycle":     graph.Cycle(30),
		"star":      graph.Star(25),
		"clique":    graph.Clique(15),
		"grid":      graph.Grid(6, 7),
		"gnp":       graph.Gnp(80, 0.08, src),
		"tree":      graph.RandomTree(60, src),
		"bipartite": graph.CompleteBipartite(7, 9),
	}
	for name, g := range workloads {
		t.Run(name, func(t *testing.T) {
			for seed := uint64(0); seed < 6; seed++ {
				res, err := Solve(g, seed, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := g.IsMaximalMatching(res.Mate); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestPairAlwaysMatches(t *testing.T) {
	g := graph.Path(2)
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Solve(g, seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Mate[0] != 1 || res.Mate[1] != 0 {
			t.Fatalf("seed %d: pair not matched: %v", seed, res.Mate)
		}
	}
}

func TestStarMatchesExactlyOneLeaf(t *testing.T) {
	g := graph.Star(12)
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Solve(g, seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		matched := 0
		for v, m := range res.Mate {
			if m != -1 {
				matched++
				if v != 0 && m != 0 {
					t.Fatalf("seed %d: leaves %d and %d matched to each other", seed, v, m)
				}
			}
		}
		if matched != 2 {
			t.Fatalf("seed %d: %d matched endpoints, want 2", seed, matched)
		}
	}
}

func TestIsolatedNodesUnmatched(t *testing.T) {
	res, err := Solve(graph.New(5), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range res.Mate {
		if m != -1 {
			t.Fatalf("isolated node %d matched to %d", v, m)
		}
	}
	if res.Phases != 1 {
		t.Fatalf("phases = %d, want 1", res.Phases)
	}
}

func TestRunTimeScalesPolylog(t *testing.T) {
	ratioAt := func(n int) float64 {
		src := xrand.New(uint64(n))
		g := graph.GnpConnected(n, 4.0/float64(n), src)
		total := 0.0
		for seed := uint64(0); seed < 3; seed++ {
			res, err := Solve(g, seed, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(res.Rounds)
		}
		return total / 3 / math.Log2(float64(n))
	}
	small, large := ratioAt(64), ratioAt(1024)
	if large > 4*small {
		t.Fatalf("rounds/log n grew from %.2f to %.2f", small, large)
	}
}

func TestNoConvergenceBudget(t *testing.T) {
	// With a 3-round budget nothing can terminate on a pair.
	_, err := Solve(graph.Path(2), 1, 3)
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestDeterministic(t *testing.T) {
	g := graph.Gnp(40, 0.1, xrand.New(2))
	a, err := Solve(g, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatal("rounds differ across identical runs")
	}
	for v := range a.Mate {
		if a.Mate[v] != b.Mate[v] {
			t.Fatal("matching differs across identical runs")
		}
	}
}
