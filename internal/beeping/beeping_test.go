package beeping

import (
	"testing"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// onceNode: node 0 beeps in round 1; everyone terminates in round 2
// recording whether they heard it.
type onceNode struct {
	id    int
	heard bool
}

func (o *onceNode) Init(id, degree int, src *xrand.Source) { o.id = id }

func (o *onceNode) Round(round int, heard bool) (bool, bool) {
	if round == 1 {
		return o.id == 0, false
	}
	o.heard = heard
	return false, true
}

func TestHearingNeighbors(t *testing.T) {
	g := graph.Star(5) // center 0
	rounds, nodes, err := Run(g, func() Node { return &onceNode{} }, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d", rounds)
	}
	for v := 1; v < 5; v++ {
		if !nodes[v].(*onceNode).heard {
			t.Fatalf("leaf %d did not hear the center's beep", v)
		}
	}
	if nodes[0].(*onceNode).heard {
		t.Fatal("center heard its own beep (no neighbor beeped)")
	}
}

// collisionNode: both endpoints of an edge beep simultaneously; with the
// sender-side collision-detection variant each hears the other.
type collisionNode struct{ heard bool }

func (c *collisionNode) Init(int, int, *xrand.Source) {}
func (c *collisionNode) Round(round int, heard bool) (bool, bool) {
	if round == 1 {
		return true, false
	}
	c.heard = heard
	return false, true
}

func TestSenderCollisionDetection(t *testing.T) {
	g := graph.Path(2)
	_, nodes, err := Run(g, func() Node { return &collisionNode{} }, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 2; v++ {
		if !nodes[v].(*collisionNode).heard {
			t.Fatalf("beeper %d missed the concurrent beep", v)
		}
	}
}

type silentNode struct{}

func (silentNode) Init(int, int, *xrand.Source) {}
func (silentNode) Round(int, bool) (bool, bool) { return false, false }

func TestRoundBudget(t *testing.T) {
	if _, _, err := Run(graph.Path(2), func() Node { return silentNode{} }, 1, 5); err == nil {
		t.Fatal("non-terminating algorithm did not error")
	}
}
