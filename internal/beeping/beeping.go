// Package beeping is the beeping-model substrate (Cornejo–Kuhn, Flury–
// Wattenhofer; used by Afek et al. for their MIS algorithms). In every
// synchronous round a node either beeps or listens; it then learns a
// single bit of feedback. This implementation provides the sender-side
// collision-detection variant (B_cd): a listener hears whether at least
// one neighbor beeped, and a beeper hears whether at least one neighbor
// beeped concurrently. As the paper's related-work section notes, the
// beeping rule is one-two-many counting with b = 1 — but the model is
// stronger than nFSM in assuming synchrony and unbounded local memory.
package beeping

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/xrand"
)

// Node is one process of a beeping algorithm.
type Node interface {
	// Init is called once before round 1.
	Init(id, degree int, src *xrand.Source)
	// Round executes one synchronous round: heard reports whether any
	// neighbor beeped in the previous round (for both listeners and
	// beepers — the collision-detection variant). The node returns
	// whether it beeps this round and whether it has terminated.
	Round(round int, heard bool) (beep bool, done bool)
}

// Run executes the beeping algorithm until every node is done, returning
// the round count and the final node objects. maxRounds of zero selects
// 1<<20.
func Run(g *graph.Graph, newNode func() Node, seed uint64, maxRounds int) (int, []Node, error) {
	n := g.N()
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}
	nodes := make([]Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = newNode()
		nodes[v].Init(v, g.Degree(v), xrand.NewStream(seed, 0xbeeb, uint64(v)))
	}
	heard := make([]bool, n)
	beeped := make([]bool, n)
	done := make([]bool, n)
	remaining := n

	for round := 1; round <= maxRounds; round++ {
		for v := 0; v < n; v++ {
			beeped[v] = false
			if done[v] {
				continue
			}
			b, fin := nodes[v].Round(round, heard[v])
			beeped[v] = b
			if fin {
				done[v] = true
				remaining--
			}
		}
		for v := 0; v < n; v++ {
			heard[v] = false
			for _, u := range g.Neighbors(v) {
				if beeped[u] {
					heard[v] = true
					break
				}
			}
		}
		if remaining == 0 {
			return round, nodes, nil
		}
	}
	return 0, nil, fmt.Errorf("beeping: %d nodes still running after %d rounds", remaining, maxRounds)
}
