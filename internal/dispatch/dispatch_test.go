package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"stoneage/internal/campaign"
	"stoneage/internal/channel"
	_ "stoneage/internal/protocol/std"
	"stoneage/internal/scenario"
)

// staticSpec is the plain sweep: two protocols, two families, two
// sizes, no dynamic axes.
func staticSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "dispatch-static",
		Protocols: []string{"mis", "ssmis"},
		Families:  []campaign.Family{{Kind: "gnp"}, {Kind: "cycle"}},
		Sizes:     []int{16, 24},
		Trials:    2,
		Seed:      7,
	}
}

// axesSpec exercises the scenario and channel axes — the acceptance
// criterion's second spec shape.
func axesSpec() campaign.Spec {
	return campaign.Spec{
		Name:      "dispatch-axes",
		Protocols: []string{"mis"},
		Families:  []campaign.Family{{Kind: "gnp"}},
		Sizes:     []int{16, 24},
		Trials:    2,
		Seed:      9,
		Scenarios: []scenario.Def{{Kind: "none"}, {Kind: "churn", Rate: 2, Count: 2, At: scenario.Round(4), Every: 16}},
		Channels:  []channel.Def{{}, {Drop: 0.2, Label: "lossy"}},
		MaxRounds: 1 << 14,
	}
}

// inprocSpawn runs workers as goroutines in this process — same
// protocol, same spill files, no exec.
func inprocSpawn() func(ctx context.Context, o Options) (func() error, error) {
	return func(ctx context.Context, o Options) (func() error, error) {
		errc := make(chan error, 1)
		go func() {
			_, err := Work(ctx, o)
			errc <- err
		}()
		return func() error { return <-errc }, nil
	}
}

// emit renders a result to its exact JSON and CSV bytes after
// stripping machine-dependent wall-clock stats.
func emit(t *testing.T, res *campaign.Result) (string, string) {
	t.Helper()
	res.StripWall()
	var j, c bytes.Buffer
	if err := res.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteCSV(&c); err != nil {
		t.Fatal(err)
	}
	return j.String(), c.String()
}

// TestShardedByteIdentity is the tentpole invariant: the coordinated
// sweep's merged emitter output is byte-identical to the
// single-process campaign.Run at proc counts 1, 2 and 4, for a static
// spec and for one sweeping scenario and channel axes.
func TestShardedByteIdentity(t *testing.T) {
	for _, spec := range []campaign.Spec{staticSpec(), axesSpec()} {
		sp := spec
		t.Run(sp.Name, func(t *testing.T) {
			base, err := campaign.Run(sp)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, wantCSV := emit(t, base)
			for _, procs := range []int{1, 2, 4} {
				res, rep, err := Run(context.Background(), Config{
					Spec:        sp,
					WorkDir:     t.TempDir(),
					Procs:       procs,
					SpawnWorker: inprocSpawn(),
				})
				if err != nil {
					t.Fatalf("procs=%d: %v", procs, err)
				}
				if rep.Executed != rep.Cells || rep.Resumed != 0 {
					t.Fatalf("procs=%d: report %+v, want all %d cells executed fresh", procs, rep, rep.Cells)
				}
				gotJSON, gotCSV := emit(t, res)
				if gotJSON != wantJSON {
					t.Fatalf("procs=%d: merged JSON differs from single-process run", procs)
				}
				if gotCSV != wantCSV {
					t.Fatalf("procs=%d: merged CSV differs from single-process run", procs)
				}
			}
		})
	}
}

// TestResumeFromSpills pins the checkpoint contract: a second Run over
// a finished work directory re-executes zero cells, spawns zero
// workers, and produces byte-identical output.
func TestResumeFromSpills(t *testing.T) {
	sp := staticSpec()
	dir := t.TempDir()
	first, _, err := Run(context.Background(), Config{Spec: sp, WorkDir: dir, Procs: 2, SpawnWorker: inprocSpawn()})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := emit(t, first)

	res, rep, err := Run(context.Background(), Config{Spec: sp, WorkDir: dir, Procs: 2, SpawnWorker: inprocSpawn()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 0 || rep.Resumed != rep.Cells || rep.Procs != 0 {
		t.Fatalf("resume report %+v, want 0 executed / %d resumed / 0 procs", rep, rep.Cells)
	}
	gotJSON, gotCSV := emit(t, res)
	if gotJSON != wantJSON || gotCSV != wantCSV {
		t.Fatal("resumed output differs from the original run")
	}
}

// TestPartialResume: cells pre-spilled by an earlier (here: simulated)
// run are not re-executed; only the remainder is.
func TestPartialResume(t *testing.T) {
	sp := staticSpec()
	dir := t.TempDir()
	if err := prepareWorkDir(dir, sp); err != nil {
		t.Fatal(err)
	}
	ids := sp.CellIDs()
	pre := 3
	spill, err := OpenSpill(dir, "old")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:pre] {
		cr, err := campaign.RunCell(sp, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := spill.Append(id.Key(), cr); err != nil {
			t.Fatal(err)
		}
	}
	spill.Close()

	res, rep, err := Run(context.Background(), Config{Spec: sp, WorkDir: dir, Procs: 2, SpawnWorker: inprocSpawn()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != pre || rep.Executed != len(ids)-pre {
		t.Fatalf("report %+v, want %d resumed / %d executed", rep, pre, len(ids)-pre)
	}
	base, err := campaign.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := emit(t, base)
	gotJSON, _ := emit(t, res)
	if gotJSON != wantJSON {
		t.Fatal("partially resumed output differs from single-process run")
	}
}

// TestClaimDirWorkers runs two coordinator-less workers against a
// shared directory, then merges their spills via a zero-pending Run —
// the shared-filesystem deployment with no coordinator process.
func TestClaimDirWorkers(t *testing.T) {
	sp := staticSpec()
	dir := t.TempDir()
	var wg sync.WaitGroup
	ran := make([]int, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ran[i], errs[i] = Work(context.Background(), Options{
				ID: fmt.Sprintf("claim%d", i), WorkDir: dir, Spec: &sp,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	total := len(sp.CellIDs())
	if ran[0]+ran[1] != total {
		t.Fatalf("workers ran %d + %d cells, want %d total", ran[0], ran[1], total)
	}

	res, rep, err := Run(context.Background(), Config{Spec: sp, WorkDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed != total || rep.Executed != 0 {
		t.Fatalf("merge report %+v, want all %d cells from spills", rep, total)
	}
	base, err := campaign.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := emit(t, base)
	gotJSON, gotCSV := emit(t, res)
	if gotJSON != wantJSON || gotCSV != wantCSV {
		t.Fatal("claim-dir merged output differs from single-process run")
	}
}

// TestStaleClaimSteal: a claim left by a dead worker (old mtime, no
// done marker) must not wedge the sweep — a later worker steals it.
func TestStaleClaimSteal(t *testing.T) {
	sp := staticSpec()
	dir := t.TempDir()
	if err := prepareWorkDir(dir, sp); err != nil {
		t.Fatal(err)
	}
	key := sp.CellIDs()[0].Key()
	stale := filepath.Join(claimsDir(dir), keyHash(key))
	if err := os.WriteFile(stale, []byte("dead\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	ran, err := Work(context.Background(), Options{ID: "thief", WorkDir: dir, Spec: &sp})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sp.CellIDs()); ran != want {
		t.Fatalf("worker ran %d cells, want %d (stale claim not stolen?)", ran, want)
	}
}

// TestSpillTruncation: a torn final line (worker killed mid-write)
// must not lose the intact records before it.
func TestSpillTruncation(t *testing.T) {
	sp := staticSpec()
	dir := t.TempDir()
	id := sp.CellIDs()[0]
	cr, err := campaign.RunCell(sp, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	spill, err := OpenSpill(dir, "torn")
	if err != nil {
		t.Fatal(err)
	}
	if err := spill.Append(id.Key(), cr); err != nil {
		t.Fatal(err)
	}
	spill.Close()
	f, err := os.OpenFile(filepath.Join(dir, "spill-torn.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"mis|sync|none|none|gnp`)
	f.Close()

	got, err := ReadSpills(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records from torn spill, want 1", len(got))
	}
	if _, ok := got[id.Key()]; !ok {
		t.Fatalf("intact record missing from torn spill")
	}
}

// TestFingerprintGuard: a work directory stamped by one sweep rejects
// another (its spills must never be merged as the wrong checkpoint).
func TestFingerprintGuard(t *testing.T) {
	a := staticSpec()
	dir := t.TempDir()
	if err := prepareWorkDir(dir, a); err != nil {
		t.Fatal(err)
	}
	b := staticSpec()
	b.Seed++
	_, _, err := Run(context.Background(), Config{Spec: b, WorkDir: dir, SpawnWorker: inprocSpawn()})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("mismatched workdir accepted: %v", err)
	}
}

// TestCellFailureAborts: a hard trial failure (reliable axis, budget
// exhausted) aborts the whole sweep with the cell's error.
func TestCellFailureAborts(t *testing.T) {
	sp := campaign.Spec{
		Protocols: []string{"mis"},
		Families:  []campaign.Family{{Kind: "gnp"}},
		Sizes:     []int{64},
		Trials:    1,
		Seed:      1,
		MaxRounds: 1,
	}
	_, _, err := Run(context.Background(), Config{
		Spec: sp, WorkDir: t.TempDir(), Procs: 2, SpawnWorker: inprocSpawn(),
	})
	if err == nil || !strings.Contains(err.Error(), "mis") {
		t.Fatalf("failing sweep returned %v, want the cell's error", err)
	}
}

// TestInterrupt: a canceled coordinator returns an interrupted error,
// not a partial merge; the finished cells stay durable for resume.
func TestInterrupt(t *testing.T) {
	sp := staticSpec()
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	spawn := func(sctx context.Context, o Options) (func() error, error) {
		o.BeforeCell = func(string) {
			once.Do(func() { close(started) })
			time.Sleep(20 * time.Millisecond)
		}
		errc := make(chan error, 1)
		go func() {
			_, err := Work(sctx, o)
			errc <- err
		}()
		return func() error { return <-errc }, nil
	}
	go func() {
		<-started
		cancel()
	}()
	_, _, err := Run(ctx, Config{Spec: sp, WorkDir: dir, Procs: 1, SpawnWorker: spawn})
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted run returned %v", err)
	}

	// The durable spills plus fresh workers finish the sweep on resume.
	res, _, err := Run(context.Background(), Config{Spec: sp, WorkDir: dir, Procs: 2, SpawnWorker: inprocSpawn()})
	if err != nil {
		t.Fatal(err)
	}
	base, err := campaign.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := emit(t, base)
	gotJSON, _ := emit(t, res)
	if gotJSON != wantJSON {
		t.Fatal("post-interrupt resume differs from single-process run")
	}
}

// TestBoardExpire pins the janitor's lease-expiry requeue.
func TestBoardExpire(t *testing.T) {
	sp := staticSpec()
	b := newBoard(sp.CellIDs()[:1], nil)
	now := time.Now()
	kind, key, _ := b.next("w0", now.Add(50*time.Millisecond))
	if kind != msgCell {
		t.Fatalf("next = %s, want cell", kind)
	}
	if n := b.expire(now); n != 0 {
		t.Fatalf("expired %d leases before the deadline", n)
	}
	b.heartbeat("w0", now.Add(time.Minute))
	if n := b.expire(now.Add(time.Second)); n != 0 {
		t.Fatalf("expired %d heartbeated leases", n)
	}
	if n := b.expire(now.Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expired %d leases past the deadline, want 1", n)
	}
	kind2, key2, _ := b.next("w1", now.Add(time.Hour))
	if kind2 != msgCell || key2 != key {
		t.Fatalf("requeued cell not re-served: got %s %q, want cell %q", kind2, key2, key)
	}
}
