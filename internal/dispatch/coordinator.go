// Package dispatch shards a campaign across worker processes.
//
// The coordinator partitions a campaign.Spec into its canonical cell
// set, serves cells to workers over a JSON-lines protocol on a unix
// socket, and merges the finished cells — keyed by canonical cell
// identity — into a campaign.Result that is byte-identical (wall-clock
// stats aside) to a single-process campaign.Run of the same spec at
// any shard count. Workers append every finished cell to a per-worker
// spill file, fsync'd per record, so a SIGKILL'd worker loses at most
// its in-flight cell (the coordinator requeues its leases) and a
// killed coordinator resumes from the spills re-running zero finished
// cells.
//
// Workers can also run coordinator-less against a shared work
// directory (Work with no socket): cells are claimed via O_EXCL claim
// files, leases are renewed by touching the claim, and claims gone
// stale (older than the lease TTL with no done marker) are stolen. A
// later Run over the same directory finds every cell spilled and goes
// straight to the merge.
package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"stoneage/internal/campaign"
)

// Config parameterizes one coordinated sweep.
type Config struct {
	// Spec is the campaign to run.
	Spec campaign.Spec
	// WorkDir holds the sweep's durable state: the effective spec, the
	// spec fingerprint, per-worker spill files, the coordinator socket
	// and (claim-dir mode) the claims/ and done/ directories. Reusing a
	// WorkDir resumes the sweep it holds; a WorkDir holding a different
	// sweep (fingerprint mismatch) is rejected.
	WorkDir string
	// Procs is the number of worker processes (default 1).
	Procs int
	// LeaseTTL bounds how long a silent worker keeps its cell before
	// the janitor requeues it (default 15s). Heartbeat is the worker's
	// lease-renewal period (default LeaseTTL/3).
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	// SpawnWorker launches one worker and returns a function that
	// blocks until it exits. Nil re-execs this binary's `work`
	// subcommand; tests substitute in-process workers or killable
	// helper processes.
	SpawnWorker func(ctx context.Context, opts Options) (func() error, error)
	// Log, when set, receives progress lines.
	Log io.Writer
}

// Report describes how a coordinated sweep was executed.
type Report struct {
	// Cells is the size of the spec's cell set.
	Cells int
	// Resumed counts cells preloaded from spill files — finished by an
	// earlier run over the same WorkDir and not re-executed.
	Resumed int
	// Executed counts cells finished by this run's workers.
	Executed int
	// Requeued counts leases taken back from dead or silent workers.
	Requeued int
	// Procs is the worker-process count used (0 when every cell was
	// resumed and no worker was spawned).
	Procs int
}

// SocketPath returns the coordinator socket path under a work
// directory.
func SocketPath(dir string) string { return filepath.Join(dir, "coord.sock") }

func specPath(dir string) string        { return filepath.Join(dir, "spec.json") }
func fingerprintPath(dir string) string { return filepath.Join(dir, "fingerprint") }
func claimsDir(dir string) string       { return filepath.Join(dir, "claims") }
func doneDir(dir string) string         { return filepath.Join(dir, "done") }

// prepareWorkDir creates the work directory layout and stamps it with
// the spec's fingerprint, rejecting a directory already stamped by a
// different sweep (its spills could otherwise be merged as this one's
// checkpoint). The effective spec is persisted so workers — including
// coordinator-less ones started later — run exactly this sweep.
func prepareWorkDir(dir string, sp campaign.Spec) error {
	for _, d := range []string{dir, claimsDir(dir), doneDir(dir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("dispatch: preparing workdir: %w", err)
		}
	}
	fp := sp.Fingerprint()
	if b, err := os.ReadFile(fingerprintPath(dir)); err == nil {
		if got := strings.TrimSpace(string(b)); got != fp {
			return fmt.Errorf("dispatch: workdir %s holds a different sweep (fingerprint %s, this spec %s); use a fresh directory", dir, got, fp)
		}
	} else if err := os.WriteFile(fingerprintPath(dir), []byte(fp+"\n"), 0o644); err != nil {
		return fmt.Errorf("dispatch: stamping workdir: %w", err)
	}
	if _, err := os.Stat(specPath(dir)); os.IsNotExist(err) {
		b, err := json.MarshalIndent(sp, "", "  ")
		if err != nil {
			return fmt.Errorf("dispatch: encoding spec: %w", err)
		}
		if err := os.WriteFile(specPath(dir), append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("dispatch: writing spec: %w", err)
		}
	}
	return nil
}

// Run coordinates one sweep: it preloads finished cells from the work
// directory's spill files, serves the remaining cells to Procs workers
// over the coordinator socket, requeues cells from workers that die or
// go silent past their lease, and merges the finished set in canonical
// cell order. The merged result is byte-identical (wall-clock stats
// aside) to campaign.Run of the same spec regardless of Procs, worker
// crashes or how work was interleaved.
func Run(ctx context.Context, cfg Config) (*campaign.Result, Report, error) {
	var rep Report
	sp := cfg.Spec
	if err := sp.Validate(); err != nil {
		return nil, rep, err
	}
	if cfg.Procs <= 0 {
		cfg.Procs = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 3
	}
	if cfg.WorkDir == "" {
		return nil, rep, fmt.Errorf("dispatch: no work directory")
	}
	if err := prepareWorkDir(cfg.WorkDir, sp); err != nil {
		return nil, rep, err
	}

	ids := sp.CellIDs()
	rep.Cells = len(ids)
	spilled, err := ReadSpills(cfg.WorkDir)
	if err != nil {
		return nil, rep, err
	}
	b := newBoard(ids, spilled)
	rep.Resumed = len(b.finished)
	if rep.Resumed > 0 {
		logf(cfg.Log, "dispatch: resumed %d/%d cells from %s", rep.Resumed, rep.Cells, cfg.WorkDir)
	}
	if b.done() {
		// Everything was already spilled — no workers, straight to the
		// merge (the resume path after a completed or nearly-killed run).
		res, err := campaign.Merge(sp, b.finishedCopy())
		return res, rep, err
	}
	rep.Procs = cfg.Procs

	sock := SocketPath(cfg.WorkDir)
	os.Remove(sock)
	ln, err := net.Listen("unix", sock)
	if err != nil {
		return nil, rep, fmt.Errorf("dispatch: listening on %s: %w", sock, err)
	}
	defer ln.Close()
	defer os.Remove(sock)

	co := &coordinator{board: b, fp: sp.Fingerprint(), ttl: cfg.LeaseTTL, log: cfg.Log, conns: map[net.Conn]bool{}}
	go co.accept(ln)

	// The janitor requeues cells whose lease lapsed — a worker that
	// stopped heartbeating is treated as dead even if its connection
	// lingers. It stops itself when the board closes.
	go func() {
		t := time.NewTicker(cfg.LeaseTTL / 2)
		defer t.Stop()
		for {
			select {
			case <-b.donec:
				return
			case now := <-t.C:
				if n := b.expire(now); n > 0 {
					logf(cfg.Log, "dispatch: requeued %d cells on lease expiry", n)
				}
			}
		}
	}()

	spawn := cfg.SpawnWorker
	if spawn == nil {
		spawn = spawnProcess
	}
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	var wg sync.WaitGroup
	var live atomic.Int32
	for i := 0; i < cfg.Procs; i++ {
		opts := Options{
			ID:        fmt.Sprintf("w%d", i),
			WorkDir:   cfg.WorkDir,
			Connect:   sock,
			LeaseTTL:  cfg.LeaseTTL,
			Heartbeat: cfg.Heartbeat,
		}
		wait, err := spawn(wctx, opts)
		if err != nil {
			b.fail(fmt.Errorf("dispatch: spawning worker %s: %w", opts.ID, err))
			break
		}
		live.Add(1)
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			werr := wait()
			// A dead worker's leases come back via the EOF path or the
			// janitor; the unrecoverable case is nobody left to serve.
			if live.Add(-1) == 0 && !b.done() {
				b.fail(fmt.Errorf("dispatch: all workers exited before the sweep finished (last: %v)", werr))
			}
		}(opts.ID)
	}

	select {
	case <-b.donec:
	case <-ctx.Done():
		b.fail(fmt.Errorf("dispatch: interrupted: %w", ctx.Err()))
	}

	// Let workers drain their final poll (they learn "done"/"abort" on
	// the next message), then force the stragglers out.
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(cfg.LeaseTTL):
	}
	wcancel()
	ln.Close()
	co.shutdown()
	select {
	case <-waited:
	case <-time.After(cfg.LeaseTTL):
		logf(cfg.Log, "dispatch: proceeding with unresponsive workers still running")
	}

	rep.Executed, rep.Requeued = b.counters()
	if err := b.failure(); err != nil {
		// A canceled context reports as an interruption even when a
		// worker-exit failure won the race to the board.
		if cerr := ctx.Err(); cerr != nil {
			return nil, rep, fmt.Errorf("dispatch: interrupted: %w", cerr)
		}
		return nil, rep, err
	}
	res, err := campaign.Merge(sp, b.finishedCopy())
	return res, rep, err
}

// spawnProcess is the default worker launcher: a re-exec of this
// binary's `work` subcommand pointed at the coordinator socket.
// Cancellation sends SIGTERM (the worker flushes and exits at the next
// trial boundary) with a hard kill only after WaitDelay.
func spawnProcess(ctx context.Context, opts Options) (func() error, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, exe, "work",
		"-workdir", opts.WorkDir, "-connect", opts.Connect, "-id", opts.ID,
		"-lease", opts.LeaseTTL.String(), "-heartbeat", opts.Heartbeat.String())
	cmd.Stderr = os.Stderr
	cmd.Cancel = func() error { return cmd.Process.Signal(syscall.SIGTERM) }
	cmd.WaitDelay = 10 * time.Second
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd.Wait, nil
}

// coordinator serves the board over accepted connections.
type coordinator struct {
	board *board
	fp    string
	ttl   time.Duration
	log   io.Writer

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
}

func (co *coordinator) accept(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		co.mu.Lock()
		if co.closed {
			co.mu.Unlock()
			conn.Close()
			return
		}
		co.conns[conn] = true
		co.mu.Unlock()
		go co.serve(conn)
	}
}

func (co *coordinator) shutdown() {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.closed = true
	for c := range co.conns {
		c.Close()
	}
}

func (co *coordinator) drop(conn net.Conn) {
	co.mu.Lock()
	delete(co.conns, conn)
	co.mu.Unlock()
	conn.Close()
}

// serve handles one worker connection. A connection that closes — the
// worker exited, crashed or was SIGKILL'd — requeues every cell the
// worker still leased.
func (co *coordinator) serve(conn net.Conn) {
	defer co.drop(conn)
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	worker := ""
	defer func() {
		if worker == "" {
			return
		}
		if n := co.board.requeueWorker(worker); n > 0 {
			logf(co.log, "dispatch: requeued %d cells from dead worker %s", n, worker)
		}
	}()
	for {
		var m msg
		if dec.Decode(&m) != nil {
			return
		}
		var reply msg
		switch m.Type {
		case msgHello:
			if m.Worker == "" {
				reply = msg{Type: msgAbort, Error: "hello without a worker id"}
			} else if m.Fingerprint != co.fp {
				reply = msg{Type: msgAbort, Error: fmt.Sprintf("spec fingerprint mismatch: worker has %s, sweep is %s", m.Fingerprint, co.fp)}
			} else {
				worker = m.Worker
				reply = msg{Type: msgOK}
			}
		case msgNext:
			kind, key, errStr := co.board.next(worker, time.Now().Add(co.ttl))
			reply = msg{Type: kind, Key: key, Error: errStr}
		case msgResult:
			if m.Cell == nil {
				reply = msg{Type: msgAbort, Error: "result without a cell payload"}
			} else {
				co.board.result(m.Key, *m.Cell)
				reply = msg{Type: msgOK}
			}
		case msgFailed:
			co.board.fail(fmt.Errorf("dispatch: worker %s: %s", worker, m.Error))
			reply = msg{Type: msgOK}
		case msgHeartbeat:
			co.board.heartbeat(worker, time.Now().Add(co.ttl))
			reply = msg{Type: msgOK}
		default:
			reply = msg{Type: msgAbort, Error: fmt.Sprintf("unknown message %q", m.Type)}
		}
		if enc.Encode(reply) != nil {
			return
		}
	}
}

// board is the coordinator's cell ledger: the pending queue (canonical
// order), outstanding leases and finished results. donec closes when
// every cell is finished or the sweep has failed.
type board struct {
	mu       sync.Mutex
	pending  []string
	leases   map[string]lease
	finished map[string]campaign.CellResult
	total    int
	executed int
	requeued int
	err      error
	donec    chan struct{}
	closed   bool
}

type lease struct {
	worker   string
	deadline time.Time
}

// newBoard seeds the ledger: spilled results for known cells count as
// finished (foreign keys — impossible after the fingerprint guard, but
// cheap to exclude — are dropped), everything else queues in canonical
// order.
func newBoard(ids []campaign.CellID, spilled map[string]campaign.CellResult) *board {
	b := &board{
		leases:   map[string]lease{},
		finished: map[string]campaign.CellResult{},
		total:    len(ids),
		donec:    make(chan struct{}),
	}
	for _, id := range ids {
		key := id.Key()
		if cr, ok := spilled[key]; ok {
			b.finished[key] = cr
		} else {
			b.pending = append(b.pending, key)
		}
	}
	if len(b.finished) == b.total {
		b.close()
	}
	return b
}

// close closes donec once. Callers hold mu (or, for newBoard, have
// exclusive access).
func (b *board) close() {
	if !b.closed {
		b.closed = true
		close(b.donec)
	}
}

func (b *board) done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

func (b *board) next(worker string, deadline time.Time) (kind, key, errStr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.err != nil:
		return msgAbort, "", b.err.Error()
	case len(b.finished) == b.total:
		return msgDone, "", ""
	case len(b.pending) == 0:
		return msgWait, "", ""
	}
	key = b.pending[0]
	b.pending = b.pending[1:]
	b.leases[key] = lease{worker: worker, deadline: deadline}
	return msgCell, key, ""
}

// result records a finished cell. Duplicates (a lease requeued from a
// slow-but-alive worker that then finished anyway) are dropped —
// first result wins, and any two results for a cell are bit-identical
// apart from wall-clock stats.
func (b *board) result(key string, cr campaign.CellResult) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.leases, key)
	if _, ok := b.finished[key]; ok {
		return
	}
	b.finished[key] = cr
	b.executed++
	if len(b.finished) == b.total {
		b.close()
	}
}

func (b *board) fail(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
	}
	b.close()
}

func (b *board) heartbeat(worker string, deadline time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for key, l := range b.leases {
		if l.worker == worker {
			b.leases[key] = lease{worker: worker, deadline: deadline}
		}
	}
}

// requeueWorker returns every cell the worker leased to the pending
// queue (EOF path: its connection closed).
func (b *board) requeueWorker(worker string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for key, l := range b.leases {
		if l.worker == worker {
			delete(b.leases, key)
			b.pending = append(b.pending, key)
			n++
		}
	}
	b.requeued += n
	return n
}

// expire requeues every lease past its deadline (janitor path: the
// worker went silent without its connection closing).
func (b *board) expire(now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for key, l := range b.leases {
		if l.deadline.Before(now) {
			delete(b.leases, key)
			b.pending = append(b.pending, key)
			n++
		}
	}
	b.requeued += n
	return n
}

func (b *board) failure() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

func (b *board) counters() (executed, requeued int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.executed, b.requeued
}

func (b *board) finishedCopy() map[string]campaign.CellResult {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]campaign.CellResult, len(b.finished))
	for k, v := range b.finished {
		out[k] = v
	}
	return out
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
