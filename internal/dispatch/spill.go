package dispatch

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"stoneage/internal/campaign"
)

// spillRecord is one durable finished cell: the canonical cell key and
// its aggregated result, one JSON object per line of a worker's spill
// file.
type spillRecord struct {
	Key  string              `json:"key"`
	Cell campaign.CellResult `json:"cell"`
}

// SpillWriter appends finished cells to a worker's spill file. Every
// record is fsync'd before Append returns, so a worker killed at any
// instant loses at most the cell it was executing — everything it
// acknowledged is on disk. The file is opened in append mode: a
// restarted worker under the same id extends its previous spill, and
// duplicate records (a cell re-run after a lease was requeued) are
// bit-identical apart from wall-clock stats, which ReadSpills
// deduplicates away.
type SpillWriter struct {
	f *os.File
}

// OpenSpill opens (creating if needed) worker's spill file under dir.
func OpenSpill(dir, worker string) (*SpillWriter, error) {
	f, err := os.OpenFile(filepath.Join(dir, "spill-"+worker+".jsonl"),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: opening spill: %w", err)
	}
	return &SpillWriter{f: f}, nil
}

// Append durably records one finished cell.
func (w *SpillWriter) Append(key string, cell campaign.CellResult) error {
	b, err := json.Marshal(spillRecord{Key: key, Cell: cell})
	if err != nil {
		return fmt.Errorf("dispatch: encoding spill record: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("dispatch: writing spill record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("dispatch: syncing spill: %w", err)
	}
	return nil
}

func (w *SpillWriter) Close() error { return w.f.Close() }

// ReadSpills loads every finished cell recorded under dir, keyed by
// canonical cell key. Files are read in sorted name order and the
// first record per key wins, so the load is deterministic. A line that
// fails to parse ends that file's scan without error: the only way a
// bad line arises is a worker killed mid-write, and append-then-fsync
// ordering guarantees everything before the torn tail is intact.
func ReadSpills(dir string) (map[string]campaign.CellResult, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "spill-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]campaign.CellResult)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("dispatch: reading spill: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var rec spillRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
				break // torn tail from a killed worker; prior records stand
			}
			if _, ok := out[rec.Key]; !ok {
				out[rec.Key] = rec.Cell
			}
		}
		f.Close()
	}
	return out, nil
}

// keyHash names a cell's claim and done-marker files: cell keys contain
// characters ('|', '/') that must not reach the filesystem.
func keyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}
