package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"stoneage/internal/campaign"
	"stoneage/internal/protocol"
)

// Options parameterizes one worker (the `stonesim work` subcommand, or
// an in-process worker in tests and benchmarks).
type Options struct {
	// ID names the worker; it keys the spill file and the claim files.
	// Empty derives an id from the pid.
	ID string
	// WorkDir is the sweep's shared work directory.
	WorkDir string
	// Connect is the coordinator socket path. Empty selects
	// coordinator-less claim-directory mode: cells are claimed with
	// O_EXCL files under WorkDir/claims, finished cells get a marker
	// under WorkDir/done, and the worker exits when nothing is left to
	// claim.
	Connect string
	// Spec, when set, overrides WorkDir/spec.json (a standalone worker
	// seeding a fresh directory passes it; the directory is then
	// stamped so later workers need no spec of their own).
	Spec *campaign.Spec
	// LeaseTTL and Heartbeat mirror Config: how stale a claim must be
	// before it is stolen, and how often held leases are renewed.
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	// BeforeCell, when set, runs before each claimed cell executes.
	// Tests use it to slow cells down and to signal the instant a cell
	// is in flight.
	BeforeCell func(key string)
	// Log, when set, receives progress lines.
	Log io.Writer
}

// waitPoll is how often a worker with nothing claimable re-asks.
const waitPoll = 50 * time.Millisecond

// Work runs one worker until the sweep is finished, aborted or the
// context is canceled. It returns the number of cells this worker
// executed. Every finished cell is appended to the worker's spill file
// and fsync'd before it is acknowledged, so at most the in-flight cell
// is lost if the worker is killed; a context cancellation (SIGINT /
// SIGTERM in the CLI) stops at the next trial boundary with every
// finished cell already durable.
func Work(ctx context.Context, opts Options) (int, error) {
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("w%d", os.Getpid())
	}
	if opts.WorkDir == "" {
		return 0, fmt.Errorf("dispatch: no work directory")
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = opts.LeaseTTL / 3
	}

	var sp campaign.Spec
	if opts.Spec != nil {
		sp = *opts.Spec
		if err := sp.Validate(); err != nil {
			return 0, err
		}
	} else {
		var err error
		sp, err = campaign.LoadSpec(specPath(opts.WorkDir))
		if err != nil {
			return 0, fmt.Errorf("dispatch: loading sweep spec: %w", err)
		}
	}
	// Stamp or verify the directory before touching anything in it; a
	// mismatched fingerprint means these spills belong to another sweep.
	if err := prepareWorkDir(opts.WorkDir, sp); err != nil {
		return 0, err
	}

	ids := sp.CellIDs()
	byKey := make(map[string]campaign.CellID, len(ids))
	for _, id := range ids {
		byKey[id.Key()] = id
	}
	spill, err := OpenSpill(opts.WorkDir, opts.ID)
	if err != nil {
		return 0, err
	}
	defer spill.Close()

	w := &worker{opts: opts, spec: sp, ids: ids, byKey: byKey, spill: spill, scratch: protocol.NewScratch()}
	if opts.Connect != "" {
		return w.workSocket(ctx)
	}
	return w.workClaims(ctx)
}

type worker struct {
	opts    Options
	spec    campaign.Spec
	ids     []campaign.CellID
	byKey   map[string]campaign.CellID
	spill   *SpillWriter
	scratch *protocol.Scratch
}

// runCell executes one claimed cell and spills it durably.
func (w *worker) runCell(ctx context.Context, key string) (campaign.CellResult, error) {
	id, ok := w.byKey[key]
	if !ok {
		return campaign.CellResult{}, fmt.Errorf("dispatch: coordinator assigned unknown cell %q", key)
	}
	if w.opts.BeforeCell != nil {
		w.opts.BeforeCell(key)
	}
	cr, err := campaign.RunCellContext(ctx, w.spec, id, w.scratch)
	if err != nil {
		return campaign.CellResult{}, err
	}
	if err := w.spill.Append(key, cr); err != nil {
		return campaign.CellResult{}, err
	}
	return cr, nil
}

// rpc pairs one request with one reply over the coordinator socket.
// The mutex serializes the main loop and the heartbeat goroutine, so
// replies never need routing.
type rpc struct {
	mu  sync.Mutex
	enc *json.Encoder
	dec *json.Decoder
}

func (r *rpc) call(m msg) (msg, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(m); err != nil {
		return msg{}, fmt.Errorf("dispatch: sending %s: %w", m.Type, err)
	}
	var reply msg
	if err := r.dec.Decode(&reply); err != nil {
		return msg{}, fmt.Errorf("dispatch: awaiting %s reply: %w", m.Type, err)
	}
	return reply, nil
}

func (w *worker) workSocket(ctx context.Context) (int, error) {
	var conn net.Conn
	var err error
	for i := 0; ; i++ {
		conn, err = net.Dial("unix", w.opts.Connect)
		if err == nil {
			break
		}
		if i >= 20 {
			return 0, fmt.Errorf("dispatch: connecting to coordinator: %w", err)
		}
		time.Sleep(waitPoll)
	}
	defer conn.Close()
	r := &rpc{enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}

	reply, err := r.call(msg{Type: msgHello, Worker: w.opts.ID, Fingerprint: w.spec.Fingerprint()})
	if err != nil {
		return 0, err
	}
	if reply.Type != msgOK {
		return 0, fmt.Errorf("dispatch: coordinator rejected worker: %s", reply.Error)
	}

	// Heartbeats renew this worker's leases while a long cell runs —
	// the main loop holds no request open during execution, so the
	// shared rpc is free.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(w.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				r.call(msg{Type: msgHeartbeat, Worker: w.opts.ID})
			}
		}
	}()

	ran := 0
	for {
		if err := ctx.Err(); err != nil {
			return ran, fmt.Errorf("dispatch: interrupted: %w", err)
		}
		reply, err := r.call(msg{Type: msgNext, Worker: w.opts.ID})
		if err != nil {
			return ran, err
		}
		switch reply.Type {
		case msgDone:
			return ran, nil
		case msgAbort:
			return ran, fmt.Errorf("dispatch: sweep aborted: %s", reply.Error)
		case msgWait:
			select {
			case <-ctx.Done():
				return ran, fmt.Errorf("dispatch: interrupted: %w", ctx.Err())
			case <-time.After(waitPoll):
			}
		case msgCell:
			cr, err := w.runCell(ctx, reply.Key)
			if err != nil {
				if ctx.Err() != nil {
					// Interrupted mid-cell: exit without reporting failure;
					// the lease requeues and another worker (or a resumed
					// run) re-executes the cell.
					return ran, fmt.Errorf("dispatch: interrupted: %w", ctx.Err())
				}
				r.call(msg{Type: msgFailed, Worker: w.opts.ID, Key: reply.Key, Error: err.Error()})
				return ran, err
			}
			if _, err := r.call(msg{Type: msgResult, Worker: w.opts.ID, Key: reply.Key, Cell: &cr}); err != nil {
				return ran, err
			}
			ran++
		default:
			return ran, fmt.Errorf("dispatch: unexpected coordinator reply %q", reply.Type)
		}
	}
}

// workClaims is coordinator-less mode: scan the cell set, claim with
// O_EXCL, run, mark done. Claims whose mtime is staler than the lease
// TTL with no done marker belong to a dead worker and are stolen. The
// worker exits when every cell is done, or when the remainder is
// leased by live peers (they will finish; a later Run merges).
func (w *worker) workClaims(ctx context.Context) (int, error) {
	// The heartbeat goroutine touches whichever claim this worker
	// currently holds, keeping it unstealable during long cells.
	var hbMu sync.Mutex
	current := ""
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(w.opts.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case now := <-t.C:
				hbMu.Lock()
				if current != "" {
					os.Chtimes(current, now, now)
				}
				hbMu.Unlock()
			}
		}
	}()
	setCurrent := func(p string) {
		hbMu.Lock()
		current = p
		hbMu.Unlock()
	}

	ran := 0
	for {
		progress := false
		remaining := 0
		for _, id := range w.ids {
			if err := ctx.Err(); err != nil {
				return ran, fmt.Errorf("dispatch: interrupted: %w", err)
			}
			key := id.Key()
			h := keyHash(key)
			donePath := filepath.Join(doneDir(w.opts.WorkDir), h)
			if _, err := os.Stat(donePath); err == nil {
				continue
			}
			remaining++
			claimPath := filepath.Join(claimsDir(w.opts.WorkDir), h)
			if !w.claim(claimPath) {
				continue
			}
			setCurrent(claimPath)
			_, err := w.runCell(ctx, key)
			setCurrent("")
			if err != nil {
				// Leave the claim in place: it goes stale after the TTL
				// and a retry would fail the same way — better that a
				// peer steals it later than that peers thrash on it now.
				return ran, err
			}
			if err := os.WriteFile(donePath, []byte(key+"\n"), 0o644); err != nil {
				return ran, fmt.Errorf("dispatch: writing done marker: %w", err)
			}
			os.Remove(claimPath)
			ran++
			remaining--
			progress = true
		}
		if remaining == 0 {
			return ran, nil
		}
		if !progress {
			logf(w.opts.Log, "dispatch: worker %s: %d cells still leased by peers; exiting", w.opts.ID, remaining)
			return ran, nil
		}
	}
}

// claim attempts to take a cell via O_EXCL creation, stealing a stale
// claim (dead owner: mtime past the TTL, cell not done) at most once.
// Concurrent stealers both remove the stale file, but the O_EXCL
// create serializes them — exactly one wins.
func (w *worker) claim(path string) bool {
	for try := 0; try < 2; try++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.WriteString(w.opts.ID + "\n")
			f.Close()
			return true
		}
		fi, serr := os.Stat(path)
		if serr != nil {
			continue // claim vanished (owner finished or a steal won); retry the create
		}
		if time.Since(fi.ModTime()) <= w.opts.LeaseTTL {
			return false // live claim
		}
		owner, _ := os.ReadFile(path)
		logf(w.opts.Log, "dispatch: worker %s: stealing stale claim %s (owner %s)",
			w.opts.ID, filepath.Base(path), strings.TrimSpace(string(owner)))
		os.Remove(path)
	}
	return false
}
