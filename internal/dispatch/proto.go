package dispatch

import "stoneage/internal/campaign"

// Wire protocol of the coordinator socket: one JSON object per line in
// each direction over a local stream socket, strictly request/response
// — every worker message gets exactly one coordinator reply, so a
// single decoder per side needs no reply routing. The worker
// serializes its requests (including background heartbeats) behind one
// mutex, which is what keeps the pairing trivially correct.
//
// Worker → coordinator:
//
//	hello     worker id + spec fingerprint; must be the first message
//	next      ask for a cell to run
//	result    a finished cell (the durable copy is already in the
//	          worker's spill file; the socket copy feeds the merge)
//	failed    a cell whose trial hard-failed — aborts the sweep
//	heartbeat renew this worker's leases during a long cell
//
// Coordinator → worker:
//
//	ok        hello/result/failed/heartbeat acknowledged
//	cell      run the cell named by key
//	wait      nothing claimable right now (others hold leases); poll again
//	done      every cell is finished; exit cleanly
//	abort     the sweep failed (or the fingerprint mismatched); exit
const (
	msgHello     = "hello"
	msgNext      = "next"
	msgResult    = "result"
	msgFailed    = "failed"
	msgHeartbeat = "heartbeat"

	msgOK    = "ok"
	msgCell  = "cell"
	msgWait  = "wait"
	msgDone  = "done"
	msgAbort = "abort"
)

// msg is the single wire envelope; which fields are meaningful depends
// on Type.
type msg struct {
	Type        string               `json:"type"`
	Worker      string               `json:"worker,omitempty"`
	Fingerprint string               `json:"fingerprint,omitempty"`
	Key         string               `json:"key,omitempty"`
	Cell        *campaign.CellResult `json:"cell,omitempty"`
	Error       string               `json:"error,omitempty"`
}
