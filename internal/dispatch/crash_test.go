package dispatch

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stoneage/internal/campaign"
)

// TestHelperWorker is not a test: it is the body of the worker
// processes TestWorkerKillRetry re-execs (the standard re-exec helper
// pattern — the env guard keeps it inert in a normal test run).
func TestHelperWorker(t *testing.T) {
	if os.Getenv("STONEAGE_WORKER_HELPER") != "1" {
		t.Skip("helper process body; driven by TestWorkerKillRetry")
	}
	opts := Options{
		ID:      os.Getenv("WORKER_ID"),
		WorkDir: os.Getenv("WORKER_DIR"),
		Connect: os.Getenv("WORKER_SOCK"),
	}
	if os.Getenv("WORKER_SLOW") == "1" {
		// The doomed worker telegraphs the instant a cell is in flight
		// (claimed, unfinished) and then stalls in it, giving the driver
		// a deterministic window to SIGKILL mid-cell.
		opts.BeforeCell = func(key string) {
			os.WriteFile(filepath.Join(opts.WorkDir, "beacon-"+opts.ID), []byte(key+"\n"), 0o644)
			time.Sleep(10 * time.Second)
		}
	}
	if _, err := Work(context.Background(), opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// TestWorkerKillRetry is the worker-failure drill the issue demands: a
// 3-process sweep, one worker SIGKILL'd while it holds a cell
// mid-execution. The coordinator must requeue the dead worker's cells
// and the merged output must remain byte-identical to the
// single-process run.
func TestWorkerKillRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs worker processes")
	}
	sp := staticSpec()
	dir := t.TempDir()

	var mu sync.Mutex
	var victim *exec.Cmd
	spawn := func(ctx context.Context, o Options) (func() error, error) {
		cmd := exec.CommandContext(ctx, os.Args[0], "-test.run", "^TestHelperWorker$")
		cmd.Env = append(os.Environ(),
			"STONEAGE_WORKER_HELPER=1",
			"WORKER_ID="+o.ID,
			"WORKER_DIR="+o.WorkDir,
			"WORKER_SOCK="+o.Connect,
		)
		if o.ID == "w0" {
			cmd.Env = append(cmd.Env, "WORKER_SLOW=1")
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		if o.ID == "w0" {
			mu.Lock()
			victim = cmd
			mu.Unlock()
		}
		return cmd.Wait, nil
	}

	// Kill w0 the moment its beacon shows a cell in flight.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		beacon := filepath.Join(dir, "beacon-w0")
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if _, err := os.Stat(beacon); err == nil {
				mu.Lock()
				cmd := victim
				mu.Unlock()
				if cmd != nil {
					cmd.Process.Kill()
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	res, rep, err := Run(context.Background(), Config{
		Spec:        sp,
		WorkDir:     dir,
		Procs:       3,
		SpawnWorker: spawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	if rep.Requeued < 1 {
		t.Fatalf("report %+v: the killed worker's cell was never requeued", rep)
	}
	if rep.Executed+rep.Resumed != rep.Cells {
		t.Fatalf("report %+v: cells unaccounted for", rep)
	}

	base, err := campaign.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := emit(t, base)
	gotJSON, gotCSV := emit(t, res)
	if gotJSON != wantJSON {
		t.Fatal("merged JSON after worker kill differs from single-process run")
	}
	if gotCSV != wantCSV {
		t.Fatal("merged CSV after worker kill differs from single-process run")
	}
}
