// Package mis implements the paper's maximal-independent-set protocol of
// Section 4 — the exact 7-state machine of Figure 1 — together with the
// tournament instrumentation used to validate the analysis (Lemma 4.3's
// edge decay and the O(log² n) run-time of Theorem 4.5).
//
// The protocol is written as an nfsm.RoundProtocol (locally synchronous
// environment with multiple-letter queries, as the paper assumes via
// Theorems 3.1 and 3.4) and can be executed directly on the synchronous
// engine or compiled with synchro.CompileRound for fully asynchronous
// execution.
package mis

import (
	"fmt"
	"sort"
	"strings"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/protocol"
)

// The states of Figure 1. The communication alphabet is identical to the
// state set: a node transmits the letter q exactly when it moves to state
// q from a different state, and transmits nothing when it stays put.
const (
	Down1 nfsm.State = iota // DOWN1: start of a tournament
	Down2                   // DOWN2: lost the inner loop, checking for winners
	Up0                     // UP0, UP1, UP2: the inner (coin-flip) loop
	Up1
	Up2
	Win  // WIN: in the MIS (output)
	Lose // LOSE: not in the MIS (output)

	numStates = 7
)

// delayedBy lists D(q): a node stays in state q while any neighbor's port
// shows a letter of D(q). DOWN1 is delayed by DOWN2; DOWN2 by all UP
// states; UP_j by UP_{j−1 mod 3}; UP0 additionally by DOWN1.
var delayedBy = [numStates][]nfsm.Letter{
	Down1: {nfsm.Letter(Down2)},
	Down2: {nfsm.Letter(Up0), nfsm.Letter(Up1), nfsm.Letter(Up2)},
	Up0:   {nfsm.Letter(Up2), nfsm.Letter(Down1)},
	Up1:   {nfsm.Letter(Up0)},
	Up2:   {nfsm.Letter(Up1)},
}

var stateNames = []string{"DOWN1", "DOWN2", "UP0", "UP1", "UP2", "WIN", "LOSE"}

// emitTo builds the move entering state next from state q, transmitting
// the letter of next exactly on state change.
func emitTo(q, next nfsm.State) nfsm.Move {
	if q == next {
		return nfsm.Move{Next: next, Emit: nfsm.NoLetter}
	}
	return nfsm.Move{Next: next, Emit: nfsm.Letter(next)}
}

var stayMoves = func() [numStates][]nfsm.Move {
	var m [numStates][]nfsm.Move
	for q := 0; q < numStates; q++ {
		m[q] = []nfsm.Move{{Next: nfsm.State(q), Emit: nfsm.NoLetter}}
	}
	return m
}()

func transition(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
	if q == Win || q == Lose {
		return stayMoves[q]
	}
	for _, d := range delayedBy[q] {
		if counts[d] > 0 {
			return stayMoves[q]
		}
	}
	switch q {
	case Down1:
		return []nfsm.Move{emitTo(q, Up0)}
	case Down2:
		if counts[nfsm.Letter(Win)] > 0 {
			return []nfsm.Move{emitTo(q, Lose)}
		}
		return []nfsm.Move{emitTo(q, Down1)}
	default: // Up0, Up1, Up2
		j := q - Up0
		headsTarget := Up0 + (j+1)%3
		// Tails: WIN when no neighbor is in UP_j or UP_{j+1 mod 3}
		// (i.e. no neighbor's tournament is still at or beyond this
		// turn); DOWN2 otherwise.
		tailsTarget := Down2
		if counts[nfsm.Letter(q)] == 0 && counts[nfsm.Letter(headsTarget)] == 0 {
			tailsTarget = Win
		}
		return []nfsm.Move{emitTo(q, headsTarget), emitTo(q, tailsTarget)}
	}
}

// Protocol returns the MIS round protocol of Figure 1: seven states,
// Σ = Q, bounding parameter b = 1, initial letter DOWN1.
func Protocol() *nfsm.RoundProtocol {
	return &nfsm.RoundProtocol{
		Name:        "mis",
		StateNames:  stateNames,
		LetterNames: stateNames,
		Input:       []nfsm.State{Down1},
		Output:      []bool{false, false, false, false, false, true, true},
		Initial:     nfsm.Letter(Down1),
		B:           1,
		Transition:  transition,
	}
}

// Extract converts a final state vector into the MIS membership mask.
// It fails if any node is not in an output state.
func Extract(states []nfsm.State) ([]bool, error) {
	inSet := make([]bool, len(states))
	for v, q := range states {
		switch q {
		case Win:
			inSet[v] = true
		case Lose:
		default:
			return nil, fmt.Errorf("mis: node %d ended in non-output state %s", v, stateNames[q])
		}
	}
	return inSet, nil
}

// SyncRun reports a synchronous MIS execution.
type SyncRun struct {
	// InSet is the MIS membership mask.
	InSet []bool
	// Rounds is the locally synchronous round count.
	Rounds int
	// Transmissions counts letters sent.
	Transmissions int64
}

// desc self-registers the protocol: the registry compiles and caches
// the 7·2⁷ flat move table once per process, and every client — the
// SolveSync/SolveAsync entry points below, the campaign runner, the
// stonesim CLI, the benchmark matrix — reaches the protocol through it.
var desc = protocol.Register(&protocol.Descriptor{
	Name:    "mis",
	Summary: "maximal independent set — the 7-state tournament of Figure 1 (Section 4)",
	// Duplication is invisible to an overwrite-only port under FIFO
	// delivery (TestSyncChannelDupTolerated); the tournament handshake
	// does not survive loss or reordering on its own. Corruption and
	// Byzantine silence are tolerated only through the voted
	// synchronizer tier (the hostile-mis sweep's async-voted cells —
	// see docs/robustness-matrix.md), at the declared eviction bound.
	Caps: protocol.CapToleratesDup |
		protocol.CapToleratesCorrupt | protocol.CapToleratesByzantine,
	EvictionBound: 3,
	Machine:       func(protocol.Args) (*nfsm.RoundProtocol, error) { return Protocol(), nil },
	Decode: func(_ protocol.Args, states []nfsm.State) (protocol.Output, error) {
		inSet, err := Extract(states)
		if err != nil {
			return nil, err
		}
		return protocol.Mask(inSet), nil
	},
	Check: func(_ protocol.Args, g *graph.Graph, out protocol.Output) error {
		return g.IsMaximalIndependentSet(out.(protocol.Mask))
	},
	Mutate: protocol.FlipMask,
})

// SolveSync runs the protocol on the compiled synchronous engine and
// extracts the MIS.
func SolveSync(g *graph.Graph, seed uint64, maxRounds int) (*SyncRun, error) {
	run, err := desc.SolveSync(g, nil, protocol.SyncConfig{Seed: seed, MaxRounds: maxRounds})
	if err != nil {
		return nil, err
	}
	return &SyncRun{
		InSet:         run.Output.(protocol.Mask),
		Rounds:        run.Rounds,
		Transmissions: run.Transmissions,
	}, nil
}

// Tournaments instruments a synchronous run with the Section 4 analysis
// quantities: for every tournament index i it reports |V^i| and |E^i| of
// the virtual graph G^i (the subgraph induced by the nodes whose
// tournament i exists). Lemma 4.3 predicts geometric decay of |E^i|.
type Tournaments struct {
	// Nodes[i] is |V^{i+1}|: how many nodes started tournament i+1.
	Nodes []int
	// Edges[i] is |E^{i+1}|.
	Edges []int
}

// DecayRatios returns the per-tournament edge decay |E^{i+1}|/|E^i| for
// every i with |E^i| > 0.
func (t *Tournaments) DecayRatios() []float64 {
	var out []float64
	for i := 0; i+1 < len(t.Edges); i++ {
		if t.Edges[i] > 0 {
			out = append(out, float64(t.Edges[i+1])/float64(t.Edges[i]))
		}
	}
	return out
}

// SolveSyncInstrumented runs the protocol synchronously while counting
// tournaments per node, then reconstructs the |V^i| and |E^i| series.
func SolveSyncInstrumented(g *graph.Graph, seed uint64, maxRounds int) (*SyncRun, *Tournaments, error) {
	n := g.N()
	// tourn[v] counts the tournaments v has started: 1 initially (every
	// node starts in DOWN1, the first turn of tournament 1), incremented
	// on every DOWN2 → DOWN1 transition.
	tourn := make([]int, n)
	for v := range tourn {
		tourn[v] = 1
	}
	prev := make([]nfsm.State, n)
	for v := range prev {
		prev[v] = Down1
	}
	observer := func(round int, states []nfsm.State) {
		for v := 0; v < n; v++ {
			if prev[v] == Down2 && states[v] == Down1 {
				tourn[v]++
			}
			prev[v] = states[v]
		}
	}
	res, err := desc.SolveSync(g, nil, protocol.SyncConfig{
		Seed: seed, MaxRounds: maxRounds, Observer: observer,
	})
	if err != nil {
		return nil, nil, err
	}
	inSet := res.Output.(protocol.Mask)

	maxT := 0
	for _, t := range tourn {
		if t > maxT {
			maxT = t
		}
	}
	ts := &Tournaments{Nodes: make([]int, maxT), Edges: make([]int, maxT)}
	for _, t := range tourn {
		for i := 0; i < t; i++ {
			ts.Nodes[i]++
		}
	}
	for _, e := range g.Edges() {
		t := tourn[e[0]]
		if tourn[e[1]] < t {
			t = tourn[e[1]]
		}
		for i := 0; i < t; i++ {
			ts.Edges[i]++
		}
	}
	run := &SyncRun{InSet: inSet, Rounds: res.Rounds, Transmissions: res.Transmissions}
	return run, ts, nil
}

// AsyncRun reports an asynchronous MIS execution through the Theorem
// 3.1/3.4 compiler.
type AsyncRun struct {
	// InSet is the MIS membership mask.
	InSet []bool
	// TimeUnits is the paper's normalized run-time.
	TimeUnits float64
	// Steps is the total number of machine steps across all nodes.
	Steps int64
	// Lost counts adversarially destroyed messages.
	Lost int64
}

// SolveAsync compiles the protocol through the registry's Theorem
// 3.1/3.4 route and runs it on the asynchronous engine under the given
// adversary.
func SolveAsync(g *graph.Graph, seed uint64, adv engine.Adversary, maxSteps int64) (*AsyncRun, error) {
	run, err := desc.SolveAsync(g, nil, protocol.AsyncConfig{
		Seed: seed, Adversary: adv, MaxSteps: maxSteps,
	})
	if err != nil {
		return nil, err
	}
	return &AsyncRun{
		InSet:     run.Output.(protocol.Mask),
		TimeUnits: run.TimeUnits,
		Steps:     run.Steps,
		Lost:      run.Lost,
	}, nil
}

// DiagramEdge is one arrow of the protocol's transition diagram: source
// and target states plus the transmitted letter (NoLetter for silent
// self-loops). Figure 1 of the paper draws exactly these arrows.
type DiagramEdge struct {
	From, To nfsm.State
	Emit     nfsm.Letter
}

// TransitionDiagram derives the protocol's state diagram by exhaustively
// enumerating δ over every clamped count vector (2⁷ combinations per
// state under b = 1) and collecting the distinct moves. The result is
// the machine-checked regeneration of Figure 1; the test suite compares
// it against the arrow set read off the paper's figure.
func TransitionDiagram() []DiagramEdge {
	seen := make(map[DiagramEdge]bool)
	var edges []DiagramEdge
	counts := make([]nfsm.Count, numStates)
	for q := 0; q < numStates; q++ {
		for mask := 0; mask < 1<<numStates; mask++ {
			for l := 0; l < numStates; l++ {
				counts[l] = nfsm.Count((mask >> l) & 1)
			}
			for _, mv := range transition(nfsm.State(q), counts) {
				e := DiagramEdge{From: nfsm.State(q), To: mv.Next, Emit: mv.Emit}
				if !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// DiagramString renders the derived diagram in a compact arrow notation.
func DiagramString() string {
	var b strings.Builder
	for _, e := range TransitionDiagram() {
		emit := "ε"
		if e.Emit != nfsm.NoLetter {
			emit = stateNames[e.Emit]
		}
		fmt.Fprintf(&b, "%s → %s (transmit %s)\n", stateNames[e.From], stateNames[e.To], emit)
	}
	return b.String()
}
