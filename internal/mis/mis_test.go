package mis

import (
	"math"
	"strings"
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

func TestProtocolShape(t *testing.T) {
	p := Protocol()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Audit(0); err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 7 || p.NumLetters() != 7 || p.B != 1 {
		t.Fatalf("unexpected shape: |Q|=%d |Σ|=%d b=%d", p.NumStates(), p.NumLetters(), p.B)
	}
}

func TestTransitionFigureOne(t *testing.T) {
	counts := make([]nfsm.Count, 7)
	zero := func() { counts = make([]nfsm.Count, 7) }

	// DOWN1 with no DOWN2 neighbor → UP0, emitting UP0.
	zero()
	mv := transition(Down1, counts)
	if len(mv) != 1 || mv[0].Next != Up0 || mv[0].Emit != nfsm.Letter(Up0) {
		t.Fatalf("DOWN1 moves = %v", mv)
	}
	// DOWN1 delayed by DOWN2.
	zero()
	counts[Down2] = 1
	mv = transition(Down1, counts)
	if len(mv) != 1 || mv[0].Next != Down1 || mv[0].Emit != nfsm.NoLetter {
		t.Fatalf("delayed DOWN1 moves = %v", mv)
	}
	// DOWN2 delayed by every UP state.
	for _, u := range []nfsm.State{Up0, Up1, Up2} {
		zero()
		counts[u] = 1
		mv = transition(Down2, counts)
		if mv[0].Next != Down2 {
			t.Fatalf("DOWN2 not delayed by %v", u)
		}
	}
	// DOWN2 with a WIN neighbor → LOSE.
	zero()
	counts[Win] = 1
	mv = transition(Down2, counts)
	if len(mv) != 1 || mv[0].Next != Lose {
		t.Fatalf("DOWN2+WIN moves = %v", mv)
	}
	// DOWN2 without a WIN neighbor → DOWN1 (next tournament).
	zero()
	mv = transition(Down2, counts)
	if len(mv) != 1 || mv[0].Next != Down1 {
		t.Fatalf("DOWN2 moves = %v", mv)
	}
	// UP_j delay structure: UP0 by UP2 and DOWN1, UP1 by UP0, UP2 by UP1.
	delays := map[nfsm.State][]nfsm.State{
		Up0: {Up2, Down1},
		Up1: {Up0},
		Up2: {Up1},
	}
	for q, ds := range delays {
		for _, d := range ds {
			zero()
			counts[d] = 1
			mv = transition(q, counts)
			if len(mv) != 1 || mv[0].Next != q {
				t.Fatalf("%v not delayed by %v: %v", q, d, mv)
			}
		}
	}
	// Free UP0: coin between UP1 (heads) and WIN (tails, no UP0/UP1 around).
	zero()
	mv = transition(Up0, counts)
	if len(mv) != 2 || mv[0].Next != Up1 || mv[1].Next != Win {
		t.Fatalf("UP0 free moves = %v", mv)
	}
	// UP0 with an UP1 neighbor: tails goes to DOWN2. (An UP1 neighbor
	// does not delay UP0.)
	zero()
	counts[Up1] = 1
	mv = transition(Up0, counts)
	if len(mv) != 2 || mv[0].Next != Up1 || mv[1].Next != Down2 {
		t.Fatalf("UP0 contended moves = %v", mv)
	}
	// WIN and LOSE are sinks.
	for _, q := range []nfsm.State{Win, Lose} {
		zero()
		for l := range counts {
			counts[l] = 1
		}
		mv = transition(q, counts)
		if len(mv) != 1 || mv[0].Next != q || mv[0].Emit != nfsm.NoLetter {
			t.Fatalf("sink %v moves = %v", q, mv)
		}
	}
}

func TestSolveSyncProducesValidMIS(t *testing.T) {
	src := xrand.New(1)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"single", graph.New(1)},
		{"isolated", graph.New(20)},
		{"pair", graph.Path(2)},
		{"path", graph.Path(64)},
		{"cycle", graph.Cycle(65)},
		{"star", graph.Star(33)},
		{"clique", graph.Clique(24)},
		{"grid", graph.Grid(8, 9)},
		{"gnp-sparse", graph.Gnp(100, 0.05, src)},
		{"gnp-dense", graph.Gnp(80, 0.4, src)},
		{"tree", graph.RandomTree(100, src)},
		{"bipartite", graph.CompleteBipartite(10, 15)},
		{"lattice", graph.ProneuralLattice(6, 6)},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				run, err := SolveSync(w.g, seed, 0)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := w.g.IsMaximalIndependentSet(run.InSet); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestIsolatedNodesAlwaysWin(t *testing.T) {
	g := graph.New(10)
	run, err := SolveSync(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range run.InSet {
		if !in {
			t.Errorf("isolated node %d not in MIS", v)
		}
	}
}

func TestCliqueExactlyOneWinner(t *testing.T) {
	g := graph.Clique(16)
	for seed := uint64(0); seed < 10; seed++ {
		run, err := SolveSync(g, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		winners := 0
		for _, in := range run.InSet {
			if in {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("seed %d: clique has %d winners", seed, winners)
		}
	}
}

func TestExtractRejectsActiveStates(t *testing.T) {
	if _, err := Extract([]nfsm.State{Win, Up1}); err == nil {
		t.Fatal("Extract accepted an active state")
	}
}

func TestRunTimeScalesPolylog(t *testing.T) {
	// Theorem 4.5: O(log² n) rounds. The normalized rounds/log²n ratio
	// must stay bounded as n grows; we allow generous slack but fail on
	// anything resembling polynomial growth.
	const trials = 3
	ratioAt := func(n int) float64 {
		total := 0.0
		src := xrand.New(uint64(n))
		for s := 0; s < trials; s++ {
			g := graph.GnpConnected(n, 4.0/float64(n), src)
			run, err := SolveSync(g, uint64(s), 0)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(run.Rounds)
		}
		l := math.Log2(float64(n))
		return total / trials / (l * l)
	}
	small, large := ratioAt(64), ratioAt(1024)
	if large > 4*small {
		t.Fatalf("rounds/log²n grew from %.2f to %.2f: not polylog", small, large)
	}
}

func TestTournamentEdgeDecay(t *testing.T) {
	// Lemma 4.3: |E^{i+1}| ≤ c·|E^i| with constant probability; in
	// aggregate the edge series must decay geometrically. We check the
	// mean decay ratio is bounded away from 1.
	src := xrand.New(7)
	g := graph.Gnp(200, 0.1, src)
	_, ts, err := SolveSyncInstrumented(g, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Edges) == 0 || ts.Edges[0] != g.M() {
		t.Fatalf("E^1 = %v, want %d", ts.Edges, g.M())
	}
	if ts.Nodes[0] != g.N() {
		t.Fatalf("V^1 = %d, want %d", ts.Nodes[0], g.N())
	}
	ratios := ts.DecayRatios()
	if len(ratios) == 0 {
		t.Fatal("no decay ratios recorded")
	}
	sum := 0.0
	for _, r := range ratios {
		if r > 1 {
			t.Fatalf("edge count increased across tournaments: %v", ts.Edges)
		}
		sum += r
	}
	if mean := sum / float64(len(ratios)); mean > 0.95 {
		t.Fatalf("mean edge decay ratio %.3f too close to 1: %v", mean, ts.Edges)
	}
	// The series must be monotone non-increasing and reach zero.
	if ts.Edges[len(ts.Edges)-1] != 0 && len(ratios) > 0 {
		// Last tournament may still have edges if the final nodes won
		// simultaneously; the node series must still shrink to a
		// positive remainder.
		t.Logf("final tournament still has %d edges", ts.Edges[len(ts.Edges)-1])
	}
}

func TestInstrumentedMatchesPlainRun(t *testing.T) {
	src := xrand.New(9)
	g := graph.Gnp(60, 0.1, src)
	plain, err := SolveSync(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, _, err := SolveSyncInstrumented(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rounds != inst.Rounds {
		t.Fatalf("instrumentation changed the execution: %d vs %d rounds", plain.Rounds, inst.Rounds)
	}
	for v := range plain.InSet {
		if plain.InSet[v] != inst.InSet[v] {
			t.Fatalf("instrumentation changed the output at node %d", v)
		}
	}
}

func TestSolveAsyncAllAdversaries(t *testing.T) {
	src := xrand.New(13)
	g := graph.Gnp(24, 0.15, src)
	for name, adv := range engine.NamedAdversaries(17) {
		t.Run(name, func(t *testing.T) {
			run, err := SolveAsync(g, 3, adv, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.IsMaximalIndependentSet(run.InSet); err != nil {
				t.Fatal(err)
			}
			if run.TimeUnits <= 0 {
				t.Error("non-positive run time")
			}
		})
	}
}

func TestSolveAsyncManySeeds(t *testing.T) {
	g := graph.Cycle(12)
	for seed := uint64(0); seed < 8; seed++ {
		run, err := SolveAsync(g, seed, engine.UniformRandom{Seed: seed + 100}, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.IsMaximalIndependentSet(run.InSet); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestTransitionDiagramMatchesFigureOne is the machine-checked
// regeneration of Figure 1: the arrow set derived by exhaustively
// enumerating the implemented δ must be exactly the arrow set of the
// paper's figure (self-loops are the delaying/sink stays; every
// non-loop arrow transmits its target's letter).
func TestTransitionDiagramMatchesFigureOne(t *testing.T) {
	type arrow struct{ from, to nfsm.State }
	want := map[arrow]bool{
		// Delaying self-loops (silent).
		{Down1, Down1}: true, {Down2, Down2}: true,
		{Up0, Up0}: true, {Up1, Up1}: true, {Up2, Up2}: true,
		// Output sinks (silent self-loops).
		{Win, Win}: true, {Lose, Lose}: true,
		// DOWN1 → UP0.
		{Down1, Up0}: true,
		// DOWN2 → DOWN1 (no WIN neighbor) and DOWN2 → LOSE (WIN neighbor).
		{Down2, Down1}: true, {Down2, Lose}: true,
		// UP_j → UP_{j+1 mod 3} (heads), → WIN or → DOWN2 (tails).
		{Up0, Up1}: true, {Up0, Win}: true, {Up0, Down2}: true,
		{Up1, Up2}: true, {Up1, Win}: true, {Up1, Down2}: true,
		{Up2, Up0}: true, {Up2, Win}: true, {Up2, Down2}: true,
	}
	edges := TransitionDiagram()
	got := map[arrow]bool{}
	for _, e := range edges {
		a := arrow{e.From, e.To}
		got[a] = true
		// Figure 1's transmission rule: self-loops are silent, every
		// state change transmits the target's letter.
		if e.From == e.To && e.Emit != nfsm.NoLetter {
			t.Errorf("self-loop at %v transmits", e.From)
		}
		if e.From != e.To && e.Emit != nfsm.Letter(e.To) {
			t.Errorf("arrow %v→%v transmits %v, want the target letter", e.From, e.To, e.Emit)
		}
	}
	for a := range want {
		if !got[a] {
			t.Errorf("figure arrow %v→%v missing from the implementation", a.from, a.to)
		}
	}
	for a := range got {
		if !want[a] {
			t.Errorf("implementation has arrow %v→%v not present in Figure 1", a.from, a.to)
		}
	}
	if s := DiagramString(); !strings.Contains(s, "DOWN1 → UP0 (transmit UP0)") {
		t.Errorf("DiagramString missing expected arrow:\n%s", s)
	}
}
