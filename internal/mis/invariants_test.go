package mis

import (
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// TestObservation41TournamentAlignment checks the structural invariant
// behind Observation 4.1: the delaying states keep adjacent nodes within
// one tournament of each other at every round. (The observation's full
// statement also bounds the turn offset; tournament alignment is the
// part the O(log² n) analysis leans on via inequality (2).)
func TestObservation41TournamentAlignment(t *testing.T) {
	src := xrand.New(21)
	graphs := []*graph.Graph{
		graph.Cycle(30),
		graph.Clique(12),
		graph.Gnp(60, 0.1, src),
		graph.Star(20),
	}
	for gi, g := range graphs {
		n := g.N()
		tourn := make([]int, n)
		prev := make([]nfsm.State, n)
		active := make([]bool, n)
		for v := range tourn {
			tourn[v], prev[v], active[v] = 1, Down1, true
		}
		observer := func(round int, states []nfsm.State) {
			for v := 0; v < n; v++ {
				if prev[v] == Down2 && states[v] == Down1 {
					tourn[v]++
				}
				if states[v] == Win || states[v] == Lose {
					active[v] = false
				}
				prev[v] = states[v]
			}
			for _, e := range g.Edges() {
				u, v := e[0], e[1]
				if !active[u] || !active[v] {
					continue
				}
				d := tourn[u] - tourn[v]
				if d < -1 || d > 1 {
					t.Fatalf("graph %d round %d: adjacent active nodes %d,%d in tournaments %d,%d",
						gi, round, u, v, tourn[u], tourn[v])
				}
			}
		}
		if _, err := engine.RunSync(Protocol(), g, engine.SyncConfig{Seed: 5, Observer: observer}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWinnersSilenceNeighborhood checks the core exclusivity property:
// once a node reaches WIN, every neighbor ends in LOSE (this is what
// makes the output independent), and every LOSE node has a WIN neighbor
// (maximality), across many seeds on an adversarially awkward graph.
func TestWinnersSilenceNeighborhood(t *testing.T) {
	g := graph.CompleteBipartite(6, 9)
	for seed := uint64(0); seed < 30; seed++ {
		run, err := SolveSync(g, seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for v, in := range run.InSet {
			hasWinNeighbor := false
			for _, u := range g.Neighbors(v) {
				if run.InSet[u] {
					hasWinNeighbor = true
				}
			}
			if in && hasWinNeighbor {
				t.Fatalf("seed %d: winner %d has a winning neighbor", seed, v)
			}
			if !in && !hasWinNeighbor {
				t.Fatalf("seed %d: loser %d has no winning neighbor", seed, v)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	run, err := SolveSync(graph.New(0), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.InSet) != 0 || run.Rounds != 0 {
		t.Fatalf("empty graph run = %+v", run)
	}
}

// TestPathAlternationStatistics sanity-checks the MIS size distribution:
// on a long path the MIS size must lie between n/3 (every third node at
// worst) and n/2+1.
func TestPathAlternationStatistics(t *testing.T) {
	const n = 300
	g := graph.Path(n)
	for seed := uint64(0); seed < 5; seed++ {
		run, err := SolveSync(g, seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		size := 0
		for _, in := range run.InSet {
			if in {
				size++
			}
		}
		if size < n/3 || size > n/2+1 {
			t.Fatalf("seed %d: path MIS size %d outside [%d, %d]", seed, size, n/3, n/2+1)
		}
	}
}

// TestTransmissionDiscipline verifies the Figure 1 transmission rule end
// to end: the total number of transmissions is exactly the total number
// of state *changes* (a node transmits iff it moves to a different
// state).
func TestTransmissionDiscipline(t *testing.T) {
	g := graph.Cycle(20)
	changes := int64(0)
	prev := make([]nfsm.State, g.N())
	for v := range prev {
		prev[v] = Down1
	}
	observer := func(round int, states []nfsm.State) {
		for v := range states {
			if states[v] != prev[v] {
				changes++
			}
			prev[v] = states[v]
		}
	}
	res, err := engine.RunSync(Protocol(), g, engine.SyncConfig{Seed: 9, Observer: observer})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transmissions != changes {
		t.Fatalf("transmissions %d != state changes %d", res.Transmissions, changes)
	}
}
