package mis_test

import (
	"fmt"
	"log"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/mis"
)

// ExampleSolveSync computes a maximal independent set on a 5-cycle with
// the Figure 1 protocol. Executions are deterministic in (graph, seed).
func ExampleSolveSync() {
	g := graph.Cycle(5)
	run, err := mis.SolveSync(g, 7, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.IsMaximalIndependentSet(run.InSet); err != nil {
		log.Fatal(err)
	}
	size := 0
	for _, in := range run.InSet {
		if in {
			size++
		}
	}
	fmt.Println("valid MIS, size", size)
	// Output: valid MIS, size 2
}

// ExampleSolveAsync runs the same protocol fully asynchronously through
// the Theorem 3.1/3.4 synchronizer under a randomized adversary.
func ExampleSolveAsync() {
	g := graph.Star(6)
	run, err := mis.SolveAsync(g, 3, engine.UniformRandom{Seed: 9}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.IsMaximalIndependentSet(run.InSet) == nil)
	// Output: true
}
