// Package ssmis implements a self-stabilizing maximal-independent-set
// protocol in the round-protocol model: a continuous claim/backoff
// process in the style of the classical randomized MIS stabilizations
// (Luby-like claims, coin-flip conflict resolution), written as an
// nFSM round protocol with four states, a two-letter alphabet and
// b = 1.
//
// Unlike the paper's Figure 1 tournament — whose WIN/LOSE states are
// absorbing sinks, so a topology change after convergence can strand an
// invalid configuration forever — no state here is a sink: every node
// transmits its current claim every round, and the stable states react
// the moment a neighbor's claim contradicts them. That is what makes
// the protocol genuinely self-stabilizing: from ANY combination of
// states and stale port contents, one round refreshes every port (all
// nodes emit every round) and the process re-converges with no reset.
// The dynamic execution layer exploits exactly this: ssmis runs
// topology-churn scenarios under scenario.ResetNone, where the paper's
// mis needs a global restart (scenario.ResetAll).
//
// Stability argument (why a terminating configuration is an MIS): the
// engine stops when every node is in InStable or OutStable. A node
// enters or keeps InStable only when it counted zero IN claims, and a
// node claiming IN always emitted the IN letter in the round before —
// so two adjacent InStable nodes are impossible (independence). A node
// enters OutStable only when it counted at least one IN claim; the
// claiming neighbor ended that round claiming IN (had it backed off it
// would be in the non-output OutUnstable and the engine would not have
// stopped), so every OutStable node has an InStable neighbor
// (maximality, and domination is by an actual member).
package ssmis

import (
	"fmt"

	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/protocol"
)

// The four states: the In/Out claim crossed with whether the last
// observation confirmed it (stable states are the output set).
const (
	InUnstable nfsm.State = iota
	OutUnstable
	InStable
	OutStable

	numStates = 4
)

// The two-letter alphabet: a node's transmitted claim.
const (
	letIn nfsm.Letter = iota
	letOut
)

var stateNames = []string{"IN?", "OUT?", "IN", "OUT"}

func transition(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
	inNeighbor := counts[letIn] > 0
	if q == InUnstable || q == InStable {
		if inNeighbor {
			// Conflict: back off with probability 1/2, else insist.
			return []nfsm.Move{
				{Next: OutUnstable, Emit: letOut},
				{Next: InUnstable, Emit: letIn},
			}
		}
		return []nfsm.Move{{Next: InStable, Emit: letIn}}
	}
	if inNeighbor {
		return []nfsm.Move{{Next: OutStable, Emit: letOut}}
	}
	// No claimed neighbor: try to join with probability 1/2.
	return []nfsm.Move{
		{Next: InUnstable, Emit: letIn},
		{Next: OutUnstable, Emit: letOut},
	}
}

// Protocol returns the self-stabilizing MIS round protocol.
func Protocol() *nfsm.RoundProtocol {
	return &nfsm.RoundProtocol{
		Name:        "ssmis",
		StateNames:  stateNames,
		LetterNames: []string{"in", "out"},
		Input:       []nfsm.State{OutUnstable},
		Output:      []bool{false, false, true, true},
		Initial:     letOut,
		B:           1,
		Transition:  transition,
	}
}

// Extract converts a final state vector into the MIS membership mask.
func Extract(states []nfsm.State) (protocol.Mask, error) {
	mask := make(protocol.Mask, len(states))
	for v, q := range states {
		switch q {
		case InStable:
			mask[v] = true
		case OutStable:
		default:
			name := "?"
			if int(q) >= 0 && int(q) < len(stateNames) {
				name = stateNames[q]
			}
			return nil, fmt.Errorf("ssmis: node %d ended in non-output state %s", v, name)
		}
	}
	return mask, nil
}

// desc self-registers the protocol with the SelfStabilizing capability:
// the dynamic execution layer runs its scenarios under
// scenario.ResetNone, and campaigns can compare its churn recovery
// against the restart-based recovery of the paper's mis. The tolerance
// capabilities record what the robustness matrix's named tests verify:
// continuous claim/backoff survives message loss and bounded
// reordering on the sync engine (a lost claim is re-sent, a stale one
// is re-overwritten), and duplication everywhere (copies land
// back-to-back on an overwrite-only port). The reorder claim is bounded
// at ReorderWindow 1 — mean-one-round delays are reabsorbed by the
// continuous re-claim, while the matrix measures valid ≈ 0.6 already at
// mean-2 windows, so an unbounded claim would overstate what the named
// tests pin.
var desc = protocol.Register(&protocol.Descriptor{
	Name:    "ssmis",
	Summary: "self-stabilizing MIS — continuous claim/backoff, recovers from churn with no reset",
	// Corruption and Byzantine silence are tolerated only through the
	// voted synchronizer tier (the hostile-mis sweep's async-voted
	// cells), at the declared eviction bound.
	Caps: protocol.CapSelfStabilizing |
		protocol.CapToleratesLoss | protocol.CapToleratesDup | protocol.CapToleratesReorder |
		protocol.CapToleratesCorrupt | protocol.CapToleratesByzantine,
	ReorderWindow: 1,
	EvictionBound: 3,
	Machine:       func(protocol.Args) (*nfsm.RoundProtocol, error) { return Protocol(), nil },
	Decode: func(_ protocol.Args, states []nfsm.State) (protocol.Output, error) {
		return Extract(states)
	},
	Check: func(_ protocol.Args, g *graph.Graph, out protocol.Output) error {
		return g.IsMaximalIndependentSet(out.(protocol.Mask))
	},
	Mutate: protocol.FlipMask,
})

// SolveSync runs the protocol on the compiled synchronous engine.
func SolveSync(g *graph.Graph, seed uint64, maxRounds int) (protocol.Mask, int, error) {
	run, err := desc.SolveSync(g, nil, protocol.SyncConfig{Seed: seed, MaxRounds: maxRounds})
	if err != nil {
		return nil, 0, err
	}
	return run.Output.(protocol.Mask), run.Rounds, nil
}
