package ssmis_test

import (
	"testing"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/protocol"
	"stoneage/internal/scenario"
	"stoneage/internal/ssmis"
	"stoneage/internal/xrand"

	// The auto-reset test compares against mis, which registers via std.
	_ "stoneage/internal/protocol/std"
)

func TestAudit(t *testing.T) {
	if err := ssmis.Protocol().Audit(0); err != nil {
		t.Fatal(err)
	}
}

// TestConvergesToMIS runs the protocol statically over a family mix and
// asserts every terminating configuration is a valid MIS.
func TestConvergesToMIS(t *testing.T) {
	graphs := []*graph.Graph{
		graph.New(1),
		graph.Path(2),
		graph.Star(16),
		graph.Cycle(31),
		graph.Clique(12),
		graph.GnpConnected(128, 4.0/128, xrand.New(4)),
		graph.Torus(8, 8),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 5; seed++ {
			mask, rounds, err := ssmis.SolveSync(g, seed, 4096)
			if err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			if err := g.IsMaximalIndependentSet(mask); err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			if g.N() > 1 && rounds < 1 {
				t.Fatalf("graph %d seed %d: implausible round count %d", gi, seed, rounds)
			}
		}
	}
}

// TestSelfStabilizesUnderChurnWithoutReset is the capability's
// substance: under Poisson edge churn with scenario.ResetNone — no node
// is ever reset, perturbed nodes keep their states and stale ports —
// the protocol still ends on a valid MIS of the final graph, for every
// seed tried. (The paper's mis cannot do this: its sinks are absorbing,
// which is why its descriptor runs scenarios under ResetAll.)
func TestSelfStabilizesUnderChurnWithoutReset(t *testing.T) {
	d, err := protocol.Lookup("ssmis")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Caps.Has(protocol.CapSelfStabilizing) {
		t.Fatal("ssmis is not marked self-stabilizing")
	}
	def := scenario.Def{Kind: "churn", Rate: 3, Count: 5, At: scenario.Round(3), Every: 9, Reset: "none"}
	for seed := uint64(1); seed <= 8; seed++ {
		g := graph.GnpConnected(64, 4.0/64, xrand.New(seed))
		sc, err := def.Generate(g, seed*101)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := d.Bind(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		run, err := bound.RunSync(protocol.SyncConfig{Seed: seed, MaxRounds: 8192, Scenario: sc})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if run.Perturbations() != len(sc.Batches) {
			t.Fatalf("seed %d: %d perturbations, want %d", seed, run.Perturbations(), len(sc.Batches))
		}
		if err := bound.CheckRun(run); err != nil {
			t.Fatalf("seed %d: output not an MIS of the final graph: %v", seed, err)
		}
		// The bind-time graph differs from the final one after churn;
		// validating against it would be checking the wrong network.
		if run.FinalGraph == nil {
			t.Fatalf("seed %d: dynamic run reports no final graph", seed)
		}
	}
}

// TestAutoResetResolution pins the capability-keyed resolution: a
// scenario with ResetAuto runs ssmis under ResetNone (bit-identical to
// an explicit none) and mis under ResetAll (bit-identical to an
// explicit all).
func TestAutoResetResolution(t *testing.T) {
	g := graph.GnpConnected(48, 4.0/48, xrand.New(6))
	def := scenario.Def{Kind: "churn", Rate: 2, Count: 3, At: scenario.Round(4), Every: 12}
	sc, err := def.Generate(g, 13)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Reset != scenario.ResetAuto {
		t.Fatalf("generated scenario reset = %v, want auto", sc.Reset)
	}
	for name, explicit := range map[string]scenario.ResetPolicy{
		"ssmis": scenario.ResetNone,
		"mis":   scenario.ResetAll,
	} {
		d, err := protocol.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := d.Bind(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		auto, err := bound.RunSync(protocol.SyncConfig{Seed: 3, MaxRounds: 8192, Scenario: sc})
		if err != nil {
			t.Fatalf("%s auto: %v", name, err)
		}
		want, err := bound.RunSync(protocol.SyncConfig{Seed: 3, MaxRounds: 8192, Scenario: sc.WithReset(explicit)})
		if err != nil {
			t.Fatalf("%s explicit: %v", name, err)
		}
		if auto.Rounds != want.Rounds || auto.Transmissions != want.Transmissions || auto.Recovery != want.Recovery {
			t.Fatalf("%s: auto (%d, %d, %g) != explicit %v (%d, %d, %g)",
				name, auto.Rounds, auto.Transmissions, auto.Recovery,
				explicit, want.Rounds, want.Transmissions, want.Recovery)
		}
	}
}

// TestAsyncDynamic exercises the synchronizer route under a dynamic
// scenario: ssmis compiled through Theorem 3.1/3.4, churned, no reset,
// valid MIS of the final graph.
func TestAsyncDynamic(t *testing.T) {
	d, err := protocol.Lookup("ssmis")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GnpConnected(24, 4.0/24, xrand.New(8))
	// Async batch times are absolute times, not rounds: scale out so
	// the synchronizer has room to simulate rounds between batches.
	sc := &scenario.Scenario{
		Name:  "async-churn",
		Reset: scenario.ResetNone,
		Batches: []scenario.Batch{
			{At: 40, Muts: flips(g, 3, 17)},
		},
	}
	bound, err := d.Bind(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := bound.RunAsync(protocol.AsyncConfig{
		Seed:      5,
		Adversary: engine.NamedAdversaries(31)["uniform"],
		MaxSteps:  1 << 22,
		Scenario:  sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Perturbations() != 1 || run.FinalGraph == nil {
		t.Fatalf("perturbations=%d finalGraph=%v", run.Perturbations(), run.FinalGraph)
	}
	if err := bound.CheckRun(run); err != nil {
		t.Fatal(err)
	}
}

// flips builds k valid edge toggles against a clone of g.
func flips(g *graph.Graph, k int, seed uint64) []graph.Mutation {
	sim := g.Clone()
	src := xrand.New(seed)
	var muts []graph.Mutation
	for len(muts) < k {
		u, v := src.Intn(g.N()), src.Intn(g.N())
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		m := graph.Mutation{Kind: graph.MutAddEdge, U: u, V: v}
		if sim.HasEdge(u, v) {
			m.Kind = graph.MutRemoveEdge
		}
		if err := m.Apply(sim); err != nil {
			panic(err)
		}
		muts = append(muts, m)
	}
	return muts
}
