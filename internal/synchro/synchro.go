// Package synchro implements the black-box compilers of Section 3 of the
// paper:
//
//   - Compile (Theorem 3.1) transforms a protocol designed for a locally
//     synchronous environment into one that runs in the fully asynchronous
//     environment of Section 2, at a constant multiplicative run-time
//     overhead. It implements the paper's synchronizer literally: messages
//     are tagged with a trit (round index mod 3) and carry the previous
//     round's transmission; a *pausing feature* stalls a node while any
//     port still holds a dirty letter (trit j−2); a *simulation feature*
//     computes the clamped count of the queried letter over the two clean
//     generations Γ_{t−1} ∪ Γ_t with the φ₁/φ₂/φ₃ double-read stability
//     check.
//
//   - CompileRound merges Theorem 3.1 with Theorem 3.4 (multiple-letter
//     queries): the simulation feature scans *every* letter of Σ with the
//     per-letter stability check, so a multi-letter RoundProtocol — the
//     layer Sections 4 and 5 are written in — runs directly in the
//     asynchronous environment.
//
//   - Expand (Theorem 3.4 standalone) subdivides each round into |Σ|
//     subrounds to turn a multi-letter protocol into a single-letter one.
//     The expansion relies on round alignment and is therefore valid in
//     the (locally) synchronous engine; for asynchronous execution use
//     CompileRound.
//
//   - CompileTolerant / CompileRoundTolerant produce the αβ-hybrid
//     variant of the same synchronizers for *unreliable* channels. The
//     paper's construction assumes every copy arrives: a dropped or
//     corrupted transmission leaves a stale letter in the receiver's
//     port forever, the pausing features of the two endpoints deadlock
//     on each other, and the clamped count is starved. The hybrid keeps
//     the α machinery bit-for-bit (the plain compilers are untouched)
//     and adds a β-style bounded retransmission: while the pausing
//     feature stalls on a dirty letter, a per-state timer ticks, and
//     every timeout-th consecutive stalled step the node re-transmits
//     its previous message M_v(t−1) verbatim. Ports are overwrite
//     registers, so a re-pulse a receiver already holds is literally
//     invisible (duplicate absorption), while a receiver whose copy was
//     lost is repaired; the trit tag keeps stale generations rejected
//     exactly as before. Loss therefore costs liveness only a bounded
//     delay instead of costing it everything.
//
// The compiled state space is constant-size (independent of the network,
// requirement (M4)) but combinatorially large, so compiled machines
// materialize their states lazily behind the nfsm.Machine interface
// instead of enumerating Q̂ up front.
package synchro

import (
	"fmt"
	"strconv"
	"sync"

	"stoneage/internal/nfsm"
)

// Feature identifiers for compiled states.
const (
	featPause = iota // pausing feature P_q × {j}
	featScan1        // simulation feature, first Γ_{t−1} pass (φ₁)
	featScan2        // simulation feature, Γ_t pass (φ₂)
	featScan3        // simulation feature, second Γ_{t−1} pass (φ₃)
)

// cdesc describes one compiled state. The tuple (q, j, prevEmit, feature,
// sigma, pos, phi1, phi2, acc, phiv) determines the state completely; its
// packed (or, for wide alphabets, string) encoding keys the memoization.
// Descriptors are stored by value in the machine's state table; δ̂ rows
// live in a parallel flat table indexed state·(b+1)+count.
type cdesc struct {
	q        nfsm.State // underlying protocol state governing this phase
	j        int        // trit of the simulated round, t mod 3
	prevEmit int        // the node's port-visible letter as of round t−1
	feature  int
	sigma    int   // letter currently being counted (scan features)
	pos      int   // position within the pausing grid or within a Γ pass
	phi1     int   // φ₁ (scan2, scan3)
	phi2     int   // φ₂ (scan3)
	acc      int   // running clamped sum of the current pass
	phiv     []int // completed counts for letters < sigma (multi-letter)
	prev2    int   // tolerant pause states: port-visible letter of round t−2
	timer    int   // tolerant pause states: consecutive stalled steps here

	query  nfsm.Letter // λ̂ of this state, precomputed
	output bool        // whether the underlying q is an output state
}

// Compiled is the asynchronous protocol Π̂ produced by Compile or
// CompileRound. It implements nfsm.Machine (and nfsm.SingleQuery: every
// compiled state queries exactly one letter, as the model of Section 2
// requires). A Compiled instance is safe for concurrent use by multiple
// runs.
type Compiled struct {
	name    string
	src     nfsm.Machine
	single  nfsm.SingleQuery // non-nil for Compile; nil for CompileRound
	scanAll bool
	nl      int // |Σ| of the source protocol
	b       int
	initial nfsm.Letter // σ̂₀ = (ε, σ₀, 0)

	// tolerant selects the αβ hybrid: pausing states carry a stall
	// timer and re-transmit M_v(t−1) every timeout-th stalled step. The
	// extra fields only enter descriptors (and intern keys) when set, so
	// plain compiled machines are bit-identical to what Compile and
	// CompileRound always produced.
	tolerant bool
	timeout  int
	// voted marks the αβv tier: the state machine is the tolerant
	// hybrid unchanged, but engines running a voted machine apply
	// k-of-(2k−1) receipt voting, dead-edge eviction and per-edge
	// re-pulse backoff (none of which fit in per-node machine state).
	voted bool

	mu     sync.Mutex
	states []cdesc
	// rows holds the lazily computed δ̂ rows at state·(b+1)+count; the
	// move storage itself comes from moveSlab, so interning and row
	// construction stop allocating once the visited state space has
	// been materialized (runs with fresh seeds keep exploring new
	// corners of Q̂, and this machinery sits on the asynchronous
	// engine's per-step path).
	rows [][]nfsm.Move
	// pindex interns descriptors by packed uint64 key when every field
	// fits (packOK); index is the general string-key fallback.
	pindex map[uint64]nfsm.State
	index  map[string]nfsm.State
	packOK bool
	qb     uint // unused in packing itself; kept for the width audit
	lb     uint // bits per letter field
	pb     uint // bits for the pause-grid / scan position
	bb     uint // bits per clamped-count field
	p2b    uint // bits for prev2+1 (tolerant only)
	tb     uint // bits for the stall timer (tolerant only)
	// moveSlab chunk-allocates δ̂ row storage; rows are sub-slices with
	// capacity clipped to their length, and a chunk is never moved once
	// handed out.
	moveSlab []nfsm.Move
	inputs   []nfsm.State // compiled input states, parallel to source inputs
}

var (
	_ nfsm.Machine     = (*Compiled)(nil)
	_ nfsm.SingleQuery = (*Compiled)(nil)
)

// Compile applies the Theorem 3.1 synchronizer to a single-letter-query
// protocol designed for a locally synchronous environment.
func Compile(p *nfsm.Protocol) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synchro: %w", err)
	}
	c := newCompiled(p.Name+"^", p, p, false, false)
	return c, nil
}

// CompileRound applies the merged Theorem 3.1 + Theorem 3.4 compiler to a
// multi-letter RoundProtocol: the result runs in the asynchronous
// environment and simulates one round of p per simulation phase.
func CompileRound(p *nfsm.RoundProtocol) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synchro: %w", err)
	}
	c := newCompiled(p.Name+"^", p, nil, true, false)
	return c, nil
}

// CompileTolerant applies the αβ-hybrid synchronizer to a single-letter
// protocol: the α machinery of Compile plus the bounded re-pulse that
// repairs dropped or corrupted copies (see the package comment). The
// re-pulse timeout defaults to PhaseSteps().
func CompileTolerant(p *nfsm.Protocol) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synchro: %w", err)
	}
	c := newCompiled(p.Name+"^αβ", p, p, false, true)
	return c, nil
}

// CompileRoundTolerant is the αβ-hybrid counterpart of CompileRound: a
// multi-letter RoundProtocol compiled for asynchronous execution over
// unreliable channels.
func CompileRoundTolerant(p *nfsm.RoundProtocol) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synchro: %w", err)
	}
	c := newCompiled(p.Name+"^αβ", p, nil, true, true)
	return c, nil
}

// CompileVoted produces the voted tier (name^αβv) of the tolerant
// synchronizer for a single-letter protocol. The compiled state machine
// is the αβ hybrid verbatim — same states, same re-pulse cadence, same
// transition rows — so a voted machine driven through the plain
// delivery path is bit-identical to CompileTolerant's. What the voted
// flag changes is the *contract with the engine*: the executor commits
// a received letter to a port only after it wins a k-of-(2k−1) vote
// over the re-pulse stream (outvoting corrupted copies), evicts edges
// that stay silent across consecutive re-pulse firings (unsticking
// Byzantine-silent neighbors), and applies per-edge multiplicative
// backoff to the re-pulse transmissions the machine requests (see
// RePulseSource). The machine is the oracle; the engine is the decoder.
func CompileVoted(p *nfsm.Protocol) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synchro: %w", err)
	}
	c := newCompiled(p.Name+"^αβv", p, p, false, true)
	c.voted = true
	return c, nil
}

// CompileRoundVoted is the voted-tier counterpart of CompileRound: a
// multi-letter RoundProtocol compiled for asynchronous execution over
// hostile channels (corruption and Byzantine silence, not just loss).
func CompileRoundVoted(p *nfsm.RoundProtocol) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synchro: %w", err)
	}
	c := newCompiled(p.Name+"^αβv", p, nil, true, true)
	c.voted = true
	return c, nil
}

func newCompiled(name string, src nfsm.Machine, single nfsm.SingleQuery, scanAll, tolerant bool) *Compiled {
	c := &Compiled{
		name:    name,
		src:     src,
		single:  single,
		scanAll: scanAll,
		nl:      src.NumLetters(),
		b:       src.Bound(),
	}
	if tolerant {
		c.tolerant = true
		// One full uninterrupted phase of the peer is the natural unit:
		// a healthy neighbor that merely lags catches up within a couple
		// of phases, so re-pulses are rare on reliable links, while a
		// starved edge is re-fed every PhaseSteps stalled steps.
		c.timeout = c.PhaseSteps()
	}
	c.packPlan(src.NumStates())
	c.initial = c.encLetter(-1, int(src.InitialLetter()), 0)
	// Register compiled input states: round 1 (trit 1), previous emission
	// σ₀ (the virtual round 0 transmits σ̂₀ = (ε, σ₀, 0), so the round-0
	// emission is σ₀). For the tolerant hybrid the round-(−1) component
	// is ε, so a round-1 re-pulse re-transmits σ̂₀ itself.
	c.mu.Lock()
	in := inputStates(src)
	for _, q := range in {
		p2 := 0
		if c.tolerant {
			p2 = -1
		}
		c.inputs = append(c.inputs, c.pauseStart(q, 1, int(src.InitialLetter()), p2))
	}
	c.mu.Unlock()
	return c
}

func inputStates(m nfsm.Machine) []nfsm.State {
	switch p := m.(type) {
	case *nfsm.Protocol:
		return p.Input
	case *nfsm.RoundProtocol:
		return p.Input
	default:
		return []nfsm.State{m.InputState()}
	}
}

// encLetter encodes the Σ̂ letter (a, b2, j) where a and b2 range over
// Σ ∪ {ε} (−1 is ε) and j is the trit.
func (c *Compiled) encLetter(a, b2, j int) nfsm.Letter {
	return nfsm.Letter(((a+1)*(c.nl+1)+(b2+1))*3 + j)
}

// pauseGrid is the number of states in one pausing feature: one per dirty
// letter (σ, σ′) pair.
func (c *Compiled) pauseGrid() int { return (c.nl + 1) * (c.nl + 1) }

// widthOf returns the bits needed to hold values 0..max.
func widthOf(max int) uint {
	w := uint(1)
	for 1<<w <= max {
		w++
	}
	return w
}

// packPlan decides whether descriptors pack injectively into a uint64
// intern key: the underlying state, trit, previous emission, feature,
// scan letter, position, the three φ accumulators, and |Σ|−1 fixed-slot
// completed counts (their number is implied by sigma, so fixed slots
// stay injective). Wide alphabets fall back to string keys.
func (c *Compiled) packPlan(srcStates int) {
	c.lb = widthOf(c.nl - 1)
	c.pb = widthOf(c.pauseGrid() - 1)
	c.bb = widthOf(c.b)
	c.qb = widthOf(srcStates - 1)
	extra := 0
	if c.nl > 1 {
		extra = (c.nl - 1) * int(c.bb)
	}
	total := int(c.qb) + 2 + int(c.lb) + 2 + int(c.lb) + int(c.pb) + 3*int(c.bb) + extra
	if c.tolerant {
		c.p2b = widthOf(c.nl) // prev2+1 ranges over 0..|Σ|
		c.tb = widthOf(c.timeout - 1)
		total += int(c.p2b) + int(c.tb)
	}
	if total <= 64 {
		c.packOK = true
		c.pindex = make(map[uint64]nfsm.State)
	} else {
		c.index = make(map[string]nfsm.State)
	}
}

// packKey encodes a descriptor into its uint64 intern key (packOK only).
func (c *Compiled) packKey(d *cdesc) uint64 {
	k := uint64(d.q)
	k = k<<2 | uint64(d.j)
	k = k<<c.lb | uint64(d.prevEmit)
	k = k<<2 | uint64(d.feature)
	k = k<<c.lb | uint64(d.sigma)
	k = k<<c.pb | uint64(d.pos)
	k = k<<c.bb | uint64(d.phi1)
	k = k<<c.bb | uint64(d.phi2)
	k = k<<c.bb | uint64(d.acc)
	for i := 0; i < c.nl-1; i++ {
		var v int
		if i < len(d.phiv) {
			v = d.phiv[i]
		}
		k = k<<c.bb | uint64(v)
	}
	if c.tolerant {
		k = k<<c.p2b | uint64(d.prev2+1)
		k = k<<c.tb | uint64(d.timer)
	}
	return k
}

// rowSlab returns stable storage for an n-move δ̂ row: a sub-slice of the
// current chunk with capacity clipped to its length (appends within a
// chunk never move it, so handed-out rows stay valid forever).
func (c *Compiled) rowSlab(n int) []nfsm.Move {
	if len(c.moveSlab)+n > cap(c.moveSlab) {
		sz := 4096
		if n > sz {
			sz = n
		}
		c.moveSlab = make([]nfsm.Move, 0, sz)
	}
	lo := len(c.moveSlab)
	c.moveSlab = c.moveSlab[:lo+n]
	return c.moveSlab[lo : lo+n : lo+n]
}

// row1 slab-allocates a singleton row.
func (c *Compiled) row1(m nfsm.Move) []nfsm.Move {
	r := c.rowSlab(1)
	r[0] = m
	return r
}

// key renders the identifying tuple of a descriptor.
func (d *cdesc) makeKey() string {
	buf := make([]byte, 0, 48)
	buf = strconv.AppendInt(buf, int64(d.q), 10)
	for _, x := range []int{d.j, d.prevEmit, d.feature, d.sigma, d.pos, d.phi1, d.phi2, d.acc, d.prev2, d.timer} {
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(x), 10)
	}
	buf = append(buf, '/')
	for _, x := range d.phiv {
		buf = strconv.AppendInt(buf, int64(x), 10)
		buf = append(buf, ',')
	}
	return string(buf)
}

// intern returns the canonical State for the descriptor, creating it if
// needed. Hits allocate nothing (descriptors are passed by value and
// keys are packed integers when the alphabet permits). Callers must
// hold c.mu.
func (c *Compiled) intern(d cdesc) nfsm.State {
	if c.packOK {
		k := c.packKey(&d)
		if s, ok := c.pindex[k]; ok {
			return s
		}
		s := c.addState(d)
		c.pindex[k] = s
		return s
	}
	k := d.makeKey()
	if s, ok := c.index[k]; ok {
		return s
	}
	s := c.addState(d)
	c.index[k] = s
	return s
}

// addState appends a new descriptor and its empty δ̂ row block. Callers
// must hold c.mu.
func (c *Compiled) addState(d cdesc) nfsm.State {
	d.output = c.src.IsOutput(d.q)
	d.query = c.queryOf(&d)
	s := nfsm.State(len(c.states))
	c.states = append(c.states, d)
	for i := 0; i <= c.b; i++ {
		c.rows = append(c.rows, nil)
	}
	return s
}

// queryOf computes λ̂ for a descriptor.
func (c *Compiled) queryOf(d *cdesc) nfsm.Letter {
	switch d.feature {
	case featPause:
		// Dirty letters carry trit j−2 ≡ j+1 (mod 3).
		a := d.pos/(c.nl+1) - 1
		b2 := d.pos%(c.nl+1) - 1
		return c.encLetter(a, b2, (d.j+1)%3)
	case featScan1, featScan3:
		// Γ_{t−1} = {(σ′, σ, j−1) : σ′ ∈ Σ ∪ {ε}}.
		return c.encLetter(d.pos-1, d.sigma, (d.j+2)%3)
	case featScan2:
		// Γ_t = {(σ, σ″, j) : σ″ ∈ Σ ∪ {ε}}.
		return c.encLetter(d.sigma, d.pos-1, d.j)
	default:
		panic("synchro: unknown feature")
	}
}

// pauseStart interns the first pausing state of P_q × {j}. prev2 is the
// port-visible letter of two rounds back (always 0 for plain machines,
// which never read it). Callers must hold c.mu.
func (c *Compiled) pauseStart(q nfsm.State, j, prevEmit, prev2 int) nfsm.State {
	return c.intern(cdesc{q: q, j: j, prevEmit: prevEmit, prev2: prev2, feature: featPause})
}

// scanStart interns the first simulation-feature state for the phase,
// resetting to letter sigma. Callers must hold c.mu.
func (c *Compiled) scanStart(d *cdesc, sigma int, phiv []int) nfsm.State {
	return c.intern(cdesc{
		q: d.q, j: d.j, prevEmit: d.prevEmit,
		feature: featScan1, sigma: sigma, phiv: phiv,
	})
}

// firstSigma returns the first letter the simulation feature counts.
func (c *Compiled) firstSigma(q nfsm.State) int {
	if c.scanAll {
		return 0
	}
	return int(c.single.QueryLetter(q))
}

// NumStates implements nfsm.Machine. The value grows as states are
// materialized; it is an upper bound on every State handed out so far.
func (c *Compiled) NumStates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.states)
}

// NumLetters implements nfsm.Machine: |Σ̂| = 3(|Σ|+1)².
func (c *Compiled) NumLetters() int { return 3 * (c.nl + 1) * (c.nl + 1) }

// InitialLetter implements nfsm.Machine: σ̂₀ = (ε, σ₀, 0).
func (c *Compiled) InitialLetter() nfsm.Letter { return c.initial }

// Bound implements nfsm.Machine: the bounding parameter is unchanged.
func (c *Compiled) Bound() int { return c.b }

// InputState implements nfsm.Machine.
func (c *Compiled) InputState() nfsm.State { return c.inputs[0] }

// Inputs returns the compiled input states, parallel to the source
// protocol's input state list. Use it to translate per-node Init vectors.
func (c *Compiled) Inputs() []nfsm.State {
	return append([]nfsm.State(nil), c.inputs...)
}

// InputFor returns the compiled initial state simulating source input
// state q.
func (c *Compiled) InputFor(q nfsm.State) (nfsm.State, error) {
	for i, s := range inputStates(c.src) {
		if s == q {
			return c.inputs[i], nil
		}
	}
	return 0, fmt.Errorf("synchro: %d is not an input state of the source protocol", q)
}

// IsOutput implements nfsm.Machine: a compiled state is an output state
// exactly when the underlying state is.
func (c *Compiled) IsOutput(s nfsm.State) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[s].output
}

// Underlying returns the source-protocol state a compiled state simulates.
func (c *Compiled) Underlying(s nfsm.State) nfsm.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[s].q
}

// IsPhaseStart reports whether s is the first pausing state of a
// simulation phase — a node enters such a state exactly once per
// simulated round, which lets observers count the rounds each node has
// begun (the synchronization-property tests rely on this).
func (c *Compiled) IsPhaseStart(s nfsm.State) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := &c.states[s]
	return d.feature == featPause && d.pos == 0 && d.timer == 0
}

// DecodeStates maps a vector of compiled states back to source states.
func (c *Compiled) DecodeStates(states []nfsm.State) []nfsm.State {
	out := make([]nfsm.State, len(states))
	for i, s := range states {
		out[i] = c.Underlying(s)
	}
	return out
}

// QueryLetter implements nfsm.SingleQuery.
func (c *Compiled) QueryLetter(s nfsm.State) nfsm.Letter {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[s].query
}

// Moves implements nfsm.Machine: δ̂ applied to compiled state s observing
// the clamped count of its query letter.
func (c *Compiled) Moves(s nfsm.State, counts []nfsm.Count) []nfsm.Move {
	c.mu.Lock()
	defer c.mu.Unlock()
	cnt := int(counts[c.states[s].query])
	ri := int(s)*(c.b+1) + cnt
	if row := c.rows[ri]; row != nil {
		return row
	}
	row := c.buildRow(s, cnt)
	// buildRow may have interned states and grown c.rows; indexed
	// assignment into the pre-existing prefix stays valid.
	c.rows[ri] = row
	return row
}

// buildRow computes the δ̂ row for (state, count). It works on a value
// copy of the descriptor: interning the successor state may grow the
// state table, which would invalidate a pointer into it. Callers hold
// c.mu.
func (c *Compiled) buildRow(s nfsm.State, cnt int) []nfsm.Move {
	d := c.states[s]
	eps := nfsm.NoLetter
	switch d.feature {
	case featPause:
		if cnt > 0 {
			if !c.tolerant {
				// A dirty letter is present: stay put.
				return c.row1(nfsm.Move{Next: s, Emit: eps})
			}
			// αβ hybrid: a dirty letter is present — tick the stall
			// timer instead of self-looping, and on expiry re-transmit
			// M_v(t−1) = (prev2, prevEmit, j−1) verbatim. A receiver
			// still holding that letter sees an overwrite no-op; a
			// receiver whose copy was dropped or corrupted is repaired,
			// which is what un-deadlocks two mutually stalled endpoints.
			// The timer wraps to 1, not 0, so (pos 0, timer 0) remains
			// the unique once-per-round phase-start state.
			if d.timer+1 < c.timeout {
				next := c.intern(cdesc{
					q: d.q, j: d.j, prevEmit: d.prevEmit, prev2: d.prev2,
					feature: featPause, pos: d.pos, timer: d.timer + 1,
				})
				return c.row1(nfsm.Move{Next: next, Emit: eps})
			}
			next := c.intern(cdesc{
				q: d.q, j: d.j, prevEmit: d.prevEmit, prev2: d.prev2,
				feature: featPause, pos: d.pos, timer: 1,
			})
			return c.row1(nfsm.Move{Next: next, Emit: c.encLetter(d.prev2, d.prevEmit, (d.j+2)%3)})
		}
		if d.pos+1 < c.pauseGrid() {
			next := c.intern(cdesc{
				q: d.q, j: d.j, prevEmit: d.prevEmit, prev2: d.prev2,
				feature: featPause, pos: d.pos + 1,
			})
			return c.row1(nfsm.Move{Next: next, Emit: eps})
		}
		// Pausing complete: enter the simulation feature.
		next := c.scanStart(&d, c.firstSigma(d.q), d.phiv)
		return c.row1(nfsm.Move{Next: next, Emit: eps})

	case featScan1, featScan2, featScan3:
		acc := d.acc + cnt
		if acc > c.b {
			acc = c.b // f_b(x+y) = min(f_b(x)+f_b(y), b)
		}
		if d.pos < c.nl { // more letters in this Γ pass
			next := c.intern(cdesc{
				q: d.q, j: d.j, prevEmit: d.prevEmit,
				feature: d.feature, sigma: d.sigma, pos: d.pos + 1,
				phi1: d.phi1, phi2: d.phi2, acc: acc, phiv: d.phiv,
			})
			return c.row1(nfsm.Move{Next: next, Emit: eps})
		}
		// Γ pass complete; acc is the pass total.
		switch d.feature {
		case featScan1:
			next := c.intern(cdesc{
				q: d.q, j: d.j, prevEmit: d.prevEmit,
				feature: featScan2, sigma: d.sigma,
				phi1: acc, phiv: d.phiv,
			})
			return c.row1(nfsm.Move{Next: next, Emit: eps})
		case featScan2:
			next := c.intern(cdesc{
				q: d.q, j: d.j, prevEmit: d.prevEmit,
				feature: featScan3, sigma: d.sigma,
				phi1: d.phi1, phi2: acc, phiv: d.phiv,
			})
			return c.row1(nfsm.Move{Next: next, Emit: eps})
		default: // featScan3
			if acc != d.phi1 {
				// A relevant port changed mid-scan: restart this letter.
				// φ₁ can only decrease, so this happens at most b times.
				return c.row1(nfsm.Move{Next: c.scanStart(&d, d.sigma, d.phiv), Emit: eps})
			}
			phi := d.phi1 + d.phi2
			if phi > c.b {
				phi = c.b
			}
			if c.scanAll && d.sigma+1 < c.nl {
				phiv := make([]int, len(d.phiv)+1)
				copy(phiv, d.phiv)
				phiv[len(d.phiv)] = phi
				return c.row1(nfsm.Move{Next: c.scanStart(&d, d.sigma+1, phiv), Emit: eps})
			}
			return c.applyDelta(&d, phi)
		}
	default:
		panic("synchro: unknown feature")
	}
}

// applyDelta finishes the simulation phase: it evaluates the source δ on
// the reconstructed counts, and for every source move emits the compiled
// message M_v(t) and enters the pausing feature of the next round.
//
// The components of M_v(t) are the *port-visible* letters of rounds t−1
// and t: the last letter the node actually transmitted up to that round,
// with an ε emission leaving the previous letter in place. This is what
// synchronization property (S2) requires the neighbors to observe — the
// paper's ports are persistent, so counting per-round raw emissions would
// lose every letter a temporarily silent node still presents. For
// protocols that transmit in every round the two notions coincide and
// this is the paper's construction verbatim. Callers hold c.mu.
func (c *Compiled) applyDelta(d *cdesc, lastPhi int) []nfsm.Move {
	counts := make([]nfsm.Count, c.nl)
	if c.scanAll {
		for i, v := range d.phiv {
			counts[i] = nfsm.Count(v)
		}
		counts[c.nl-1] = nfsm.Count(lastPhi)
	} else {
		counts[d.sigma] = nfsm.Count(lastPhi)
	}
	srcMoves := c.src.Moves(d.q, counts)
	out := c.rowSlab(len(srcMoves))
	for i, mv := range srcMoves {
		cur := d.prevEmit // ε emission: the port keeps showing the old letter
		if mv.Emit != nfsm.NoLetter {
			cur = int(mv.Emit)
		}
		p2 := 0
		if c.tolerant {
			p2 = d.prevEmit // the a-component of the message just emitted
		}
		next := c.pauseStart(mv.Next, (d.j+1)%3, cur, p2)
		out[i] = nfsm.Move{
			Next: next,
			Emit: c.encLetter(d.prevEmit, cur, d.j),
		}
	}
	return out
}

// PhaseSteps returns an upper bound on the number of compiled steps in one
// simulation phase when no restart occurs: the pausing grid plus the scan
// passes. The Theorem 3.1 constant-overhead claim is that the async
// run-time is O(PhaseSteps · rounds); the experiment harness measures the
// realized ratio.
func (c *Compiled) PhaseSteps() int {
	letters := 1
	if c.scanAll {
		letters = c.nl
	}
	return c.pauseGrid() + letters*3*(c.nl+1)
}

// Name returns the compiled protocol's name.
func (c *Compiled) Name() string { return c.name }

// Tolerant reports whether this machine is the αβ hybrid (re-pulse on
// stall timeout) rather than the plain α synchronizer.
func (c *Compiled) Tolerant() bool { return c.tolerant }

// Timeout returns the number of consecutive stalled steps after which a
// tolerant machine re-transmits M_v(t−1); it is 0 for plain machines.
func (c *Compiled) Timeout() int { return c.timeout }

// Voted reports whether this machine is the αβv tier: a tolerant
// hybrid whose engine contract adds voted pulse decoding, dead-edge
// eviction and adaptive re-pulse backoff.
func (c *Compiled) Voted() bool { return c.voted }

// RePulseSource reports whether an emission made from state s is a
// re-pulse (a timer-expiry re-transmission of M_v(t−1) from a pausing
// state) as opposed to a fresh round message (emitted from the final
// scan state via δ̂). Engines running a voted machine gate and count
// re-pulse transmissions per edge; round messages are never gated.
func (c *Compiled) RePulseSource(s nfsm.State) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.states[s].feature == featPause
}
