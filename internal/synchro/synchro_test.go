package synchro

import (
	"errors"
	"testing"

	"stoneage/internal/channel"
	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
)

// waveProtocol duplicates the single-letter broadcast wave used in the
// engine tests: sources fire PING and finish; idle nodes finish upon
// observing PING. It is deterministic, so compiled runs must reproduce
// the synchronous outcome exactly.
func waveProtocol() *nfsm.Protocol {
	stay := func(q nfsm.State) []nfsm.Move { return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}} }
	return &nfsm.Protocol{
		Name:        "wave",
		StateNames:  []string{"idle", "source", "done"},
		LetterNames: []string{"ping", "quiet"},
		Input:       []nfsm.State{0, 1},
		Output:      []bool{false, false, true},
		Initial:     1,
		B:           1,
		Query:       []nfsm.Letter{0, 0, 0},
		Delta: [][][]nfsm.Move{
			{stay(0), {{Next: 2, Emit: 0}}},
			{{{Next: 2, Emit: 0}}, {{Next: 2, Emit: 0}}},
			{stay(2), stay(2)},
		},
	}
}

// pairObserver is a deterministic multi-letter RoundProtocol: type-A nodes
// transmit 'a' and type-B nodes transmit 'b' in round 1; in round 2 every
// node observes which of the two letters occur among its ports and moves
// to the output state encoding that pair. States: 0 SA, 1 SB, 2 WAIT,
// 3..6 observed (a?, b?) pairs as 3 + 2·[a] + [b].
func pairObserver() *nfsm.RoundProtocol {
	return &nfsm.RoundProtocol{
		Name:        "pairobs",
		StateNames:  []string{"sa", "sb", "wait", "o00", "o01", "o10", "o11"},
		LetterNames: []string{"a", "b", "z"},
		Input:       []nfsm.State{0, 1},
		Output:      []bool{false, false, false, true, true, true, true},
		Initial:     2, // z
		B:           1,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			switch q {
			case 0:
				return []nfsm.Move{{Next: 2, Emit: 0}}
			case 1:
				return []nfsm.Move{{Next: 2, Emit: 1}}
			case 2:
				out := nfsm.State(3)
				if counts[0] > 0 {
					out += 2
				}
				if counts[1] > 0 {
					out++
				}
				return []nfsm.Move{{Next: out, Emit: nfsm.NoLetter}}
			default:
				return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
			}
		},
	}
}

// pairObserverWant computes the expected output state of every node given
// the type assignment (false = A, true = B).
func pairObserverWant(g *graph.Graph, isB []bool) []nfsm.State {
	want := make([]nfsm.State, g.N())
	for v := range want {
		out := nfsm.State(3)
		hasA, hasB := false, false
		for _, u := range g.Neighbors(v) {
			if isB[u] {
				hasB = true
			} else {
				hasA = true
			}
		}
		if hasA {
			out += 2
		}
		if hasB {
			out++
		}
		want[v] = out
	}
	return want
}

func pairObserverInit(isB []bool) []nfsm.State {
	init := make([]nfsm.State, len(isB))
	for v, b := range isB {
		if b {
			init[v] = 1
		}
	}
	return init
}

func compiledInit(t *testing.T, c *Compiled, srcInit []nfsm.State) []nfsm.State {
	t.Helper()
	init := make([]nfsm.State, len(srcInit))
	for v, q := range srcInit {
		s, err := c.InputFor(q)
		if err != nil {
			t.Fatal(err)
		}
		init[v] = s
	}
	return init
}

func TestCompileRejectsInvalidProtocol(t *testing.T) {
	p := waveProtocol()
	p.Query = nil
	if _, err := Compile(p); err == nil {
		t.Fatal("invalid protocol compiled")
	}
	rp := pairObserver()
	rp.Transition = nil
	if _, err := CompileRound(rp); err == nil {
		t.Fatal("invalid round protocol compiled")
	}
}

func TestCompiledWaveAsyncAllAdversaries(t *testing.T) {
	src := waveProtocol()
	g := graph.Path(12)
	srcInit := make([]nfsm.State, 12)
	srcInit[0] = 1
	for name, adv := range engine.NamedAdversaries(21) {
		t.Run(name, func(t *testing.T) {
			c, err := Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.RunAsync(c, g, engine.AsyncConfig{
				Seed:      5,
				Adversary: adv,
				Init:      compiledInit(t, c, srcInit),
			})
			if err != nil {
				t.Fatal(err)
			}
			for v, q := range c.DecodeStates(res.States) {
				if q != 2 {
					t.Errorf("node %d decoded to state %d, want done", v, q)
				}
			}
		})
	}
}

func TestCompiledRoundMatchesSyncExactly(t *testing.T) {
	// The pairObserver protocol is deterministic, so the asynchronous
	// compiled execution must land every node in the same output state
	// as the direct synchronous run, under every adversary. This is the
	// end-to-end check of synchronization property (S2): the compiled
	// nodes must act on exactly the previous round's messages.
	src := pairObserver()
	if err := src.Audit(0); err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"path":   graph.Path(9),
		"star":   graph.Star(7),
		"cycle":  graph.Cycle(8),
		"clique": graph.Clique(6),
		"grid":   graph.Grid(3, 3),
	}
	for gname, g := range graphs {
		isB := make([]bool, g.N())
		for v := range isB {
			isB[v] = v%3 == 0
		}
		want := pairObserverWant(g, isB)
		srcInit := pairObserverInit(isB)

		// Direct synchronous run agrees with the analytic expectation.
		sres, err := engine.RunSync(src, g, engine.SyncConfig{Seed: 1, Init: srcInit})
		if err != nil {
			t.Fatalf("%s: sync: %v", gname, err)
		}
		for v := range want {
			if sres.States[v] != want[v] {
				t.Fatalf("%s: sync node %d = %d, want %d", gname, v, sres.States[v], want[v])
			}
		}

		for aname, adv := range engine.NamedAdversaries(33) {
			c, err := CompileRound(src)
			if err != nil {
				t.Fatal(err)
			}
			ares, err := engine.RunAsync(c, g, engine.AsyncConfig{
				Seed:      9,
				Adversary: adv,
				Init:      compiledInit(t, c, srcInit),
			})
			if err != nil {
				t.Fatalf("%s/%s: async: %v", gname, aname, err)
			}
			got := c.DecodeStates(ares.States)
			for v := range want {
				if got[v] != want[v] {
					t.Errorf("%s/%s: node %d decoded to %d, want %d", gname, aname, v, got[v], want[v])
				}
			}
		}
	}
}

func TestCompiledThresholdCounting(t *testing.T) {
	// One-two-many counting must survive compilation: with b=2, a
	// collector surrounded by three emitters observes ≥2 and finishes.
	collect := &nfsm.RoundProtocol{
		Name:        "collect2",
		StateNames:  []string{"collect", "emit", "sent", "done"},
		LetterNames: []string{"ping", "quiet"},
		Input:       []nfsm.State{0, 1},
		Output:      []bool{false, false, true, true},
		Initial:     1,
		B:           2,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			switch q {
			case 0:
				if counts[0] >= 2 {
					return []nfsm.Move{{Next: 3, Emit: nfsm.NoLetter}}
				}
				return []nfsm.Move{{Next: 0, Emit: nfsm.NoLetter}}
			case 1:
				return []nfsm.Move{{Next: 2, Emit: 0}}
			default:
				return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
			}
		},
	}
	g := graph.Star(4)
	srcInit := []nfsm.State{0, 1, 1, 1}
	c, err := CompileRound(collect)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunAsync(c, g, engine.AsyncConfig{
		Seed:      2,
		Adversary: engine.UniformRandom{Seed: 3},
		Init:      compiledInit(t, c, srcInit),
	})
	if err != nil {
		t.Fatal(err)
	}
	if q := c.Underlying(res.States[0]); q != 3 {
		t.Fatalf("collector decoded to %d, want done", q)
	}
}

func TestCompiledCoinDistributionPreserved(t *testing.T) {
	coin := &nfsm.RoundProtocol{
		Name:        "coin",
		StateNames:  []string{"flip", "heads", "tails"},
		LetterNames: []string{"x"},
		Input:       []nfsm.State{0},
		Output:      []bool{false, true, true},
		Initial:     0,
		B:           1,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			if q == 0 {
				return []nfsm.Move{{Next: 1, Emit: nfsm.NoLetter}, {Next: 2, Emit: nfsm.NoLetter}}
			}
			return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
		},
	}
	g := graph.New(1000) // isolated nodes
	c, err := CompileRound(coin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunAsync(c, g, engine.AsyncConfig{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	heads := 0
	for _, q := range c.DecodeStates(res.States) {
		if q == 1 {
			heads++
		}
	}
	if heads < 420 || heads > 580 {
		t.Fatalf("heads = %d of 1000: compiled coin is biased", heads)
	}
}

func TestCompiledOverheadConstant(t *testing.T) {
	// Theorem 3.1: the asynchronous run-time is a constant factor times
	// the synchronous round count. The wave on P_n takes n rounds, so the
	// normalized per-round cost must be essentially flat in n.
	src := waveProtocol()
	perRound := func(n int) float64 {
		g := graph.Path(n)
		srcInit := make([]nfsm.State, n)
		srcInit[0] = 1
		c, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.RunAsync(c, g, engine.AsyncConfig{
			Seed: 4,
			Init: compiledInit(t, c, srcInit),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TimeUnits / float64(n)
	}
	small, large := perRound(8), perRound(48)
	if ratio := large / small; ratio > 1.6 || ratio < 0.4 {
		t.Fatalf("per-round overhead drifted with n: %.2f vs %.2f (ratio %.2f)", small, large, ratio)
	}
}

func TestCompiledPhaseStepsBound(t *testing.T) {
	c, err := Compile(waveProtocol())
	if err != nil {
		t.Fatal(err)
	}
	// Pausing grid (|Σ|+1)² = 9 plus one scan of 3(|Σ|+1) = 9 states.
	if got, want := c.PhaseSteps(), 18; got != want {
		t.Fatalf("PhaseSteps = %d, want %d", got, want)
	}
	cr, err := CompileRound(pairObserver())
	if err != nil {
		t.Fatal(err)
	}
	// Pausing 16 + 3 letters × 3 passes × 4 = 52.
	if got, want := cr.PhaseSteps(), 52; got != want {
		t.Fatalf("round PhaseSteps = %d, want %d", got, want)
	}
}

// TestTolerantMatchesPlainSemantics pins the αβ hybrid to the same
// simulation contract as the plain compiler on reliable links: the
// deterministic pairObserver must land every node in the analytic
// output state under every adversary, exactly like CompileRound.
func TestTolerantMatchesPlainSemantics(t *testing.T) {
	src := pairObserver()
	g := graph.Grid(3, 4)
	isB := make([]bool, g.N())
	for v := range isB {
		isB[v] = v%3 == 0
	}
	want := pairObserverWant(g, isB)
	srcInit := pairObserverInit(isB)
	for aname, adv := range engine.NamedAdversaries(33) {
		c, err := CompileRoundTolerant(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.RunAsync(c, g, engine.AsyncConfig{
			Seed:      9,
			Adversary: adv,
			Init:      compiledInit(t, c, srcInit),
		})
		if err != nil {
			t.Fatalf("%s: async: %v", aname, err)
		}
		got := c.DecodeStates(res.States)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("%s: node %d decoded to %d, want %d", aname, v, got[v], want[v])
			}
		}
	}
}

// TestTolerantSurvivesLoss is the headline regression: under 10% loss
// the plain α machine deadlocks (mutual pause-stall) and exhausts its
// budget, while the αβ hybrid's re-pulses repair the dropped copies and
// the run still lands every node in the analytic output state.
func TestTolerantSurvivesLoss(t *testing.T) {
	src := pairObserver()
	g := graph.Cycle(16)
	isB := make([]bool, g.N())
	for v := range isB {
		isB[v] = v%2 == 0
	}
	want := pairObserverWant(g, isB)
	srcInit := pairObserverInit(isB)
	for seed := uint64(0); seed < 3; seed++ {
		model := channel.Drop{Rate: 0.1, Seed: 41 + seed}
		plain, err := CompileRound(src)
		if err != nil {
			t.Fatal(err)
		}
		_, err = engine.RunAsync(plain, g, engine.AsyncConfig{
			Seed:      seed,
			Adversary: engine.UniformRandom{Seed: 7},
			Init:      compiledInit(t, plain, srcInit),
			Channel:   model,
			MaxSteps:  1 << 18,
		})
		if !errors.Is(err, engine.ErrNoConvergence) {
			t.Fatalf("seed %d: plain α under loss: err = %v, want non-convergence", seed, err)
		}
		tol, err := CompileRoundTolerant(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.RunAsync(tol, g, engine.AsyncConfig{
			Seed:      seed,
			Adversary: engine.UniformRandom{Seed: 7},
			Init:      compiledInit(t, tol, srcInit),
			Channel:   model,
			MaxSteps:  1 << 18,
		})
		if err != nil {
			t.Fatalf("seed %d: tolerant under loss: %v", seed, err)
		}
		if res.Dropped == 0 {
			t.Fatalf("seed %d: loss model dropped nothing", seed)
		}
		got := tol.DecodeStates(res.States)
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("seed %d: node %d decoded to %d, want %d", seed, v, got[v], want[v])
			}
		}
	}
}

// TestTolerantWaveAllAdversaries reruns the broadcast wave through the
// single-query tolerant compiler: CompileTolerant shares everything but
// the re-pulse rows with Compile, so the wave must still complete under
// every adversary.
func TestTolerantWaveAllAdversaries(t *testing.T) {
	src := waveProtocol()
	g := graph.Path(12)
	srcInit := make([]nfsm.State, 12)
	srcInit[0] = 1
	for name, adv := range engine.NamedAdversaries(21) {
		t.Run(name, func(t *testing.T) {
			c, err := CompileTolerant(src)
			if err != nil {
				t.Fatal(err)
			}
			res, err := engine.RunAsync(c, g, engine.AsyncConfig{
				Seed:      5,
				Adversary: adv,
				Init:      compiledInit(t, c, srcInit),
			})
			if err != nil {
				t.Fatal(err)
			}
			for v, q := range c.DecodeStates(res.States) {
				if q != 2 {
					t.Errorf("node %d decoded to state %d, want done", v, q)
				}
			}
		})
	}
}

func TestTolerantAccessors(t *testing.T) {
	c, err := CompileTolerant(waveProtocol())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "wave^αβ" {
		t.Errorf("Name = %q", c.Name())
	}
	if !c.Tolerant() {
		t.Error("Tolerant() = false")
	}
	if got, want := c.Timeout(), c.PhaseSteps(); got != want {
		t.Errorf("Timeout = %d, want PhaseSteps = %d", got, want)
	}
	plain, err := Compile(waveProtocol())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tolerant() || plain.Timeout() != 0 {
		t.Errorf("plain machine reports tolerant=%v timeout=%d", plain.Tolerant(), plain.Timeout())
	}
	rejected := waveProtocol()
	rejected.Query = nil
	if _, err := CompileTolerant(rejected); err == nil {
		t.Error("invalid protocol compiled tolerant")
	}
	badRound := pairObserver()
	badRound.Transition = nil
	if _, err := CompileRoundTolerant(badRound); err == nil {
		t.Error("invalid round protocol compiled tolerant")
	}
}

func TestCompiledAccessors(t *testing.T) {
	c, err := Compile(waveProtocol())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "wave^" {
		t.Errorf("Name = %q", c.Name())
	}
	if c.Bound() != 1 {
		t.Errorf("Bound = %d", c.Bound())
	}
	if got, want := c.NumLetters(), 3*3*3; got != want {
		t.Errorf("NumLetters = %d, want %d", got, want)
	}
	if len(c.Inputs()) != 2 {
		t.Errorf("Inputs = %v", c.Inputs())
	}
	if _, err := c.InputFor(2); err == nil {
		t.Error("InputFor accepted a non-input state")
	}
	s, err := c.InputFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Underlying(s) != 1 {
		t.Errorf("Underlying(InputFor(1)) = %d", c.Underlying(s))
	}
	if c.IsOutput(s) {
		t.Error("input state flagged as output")
	}
}

func TestExpandedMatchesOriginalOnSync(t *testing.T) {
	src := pairObserver()
	g := graph.Grid(3, 4)
	isB := make([]bool, g.N())
	for v := range isB {
		isB[v] = v%2 == 1
	}
	want := pairObserverWant(g, isB)
	srcInit := pairObserverInit(isB)

	e, err := Expand(src)
	if err != nil {
		t.Fatal(err)
	}
	init := make([]nfsm.State, len(srcInit))
	for v, q := range srcInit {
		init[v] = e.Inputs()[q] // inputs parallel to src.Input = {0, 1}
	}
	res, err := engine.RunSync(e, g, engine.SyncConfig{Seed: 6, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	got := e.DecodeStates(res.States)
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("node %d decoded to %d, want %d", v, got[v], want[v])
		}
	}
	// The source takes exactly 2 rounds; the expansion multiplies by |Σ|.
	if wantRounds := 2 * e.SubroundsPerRound(); res.Rounds != wantRounds {
		t.Errorf("rounds = %d, want %d", res.Rounds, wantRounds)
	}
}

func TestExpandRejectsInvalid(t *testing.T) {
	p := pairObserver()
	p.Input = nil
	if _, err := Expand(p); err == nil {
		t.Fatal("invalid protocol expanded")
	}
}

func TestExpandedAccessors(t *testing.T) {
	e, err := Expand(pairObserver())
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "pairobs*" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.NumLetters() != 3 || e.Bound() != 1 || e.SubroundsPerRound() != 3 {
		t.Error("basic accessors wrong")
	}
	if e.InitialLetter() != 2 {
		t.Errorf("InitialLetter = %d", e.InitialLetter())
	}
	if e.IsOutput(e.InputState()) {
		t.Error("input flagged as output")
	}
}
