package synchro

import (
	"testing"
	"testing/quick"

	"stoneage/internal/engine"
	"stoneage/internal/graph"
	"stoneage/internal/nfsm"
	"stoneage/internal/xrand"
)

// randomDeterministicProtocol builds a pseudo-random but well-formed,
// deterministic, always-terminating RoundProtocol: the state index is
// non-decreasing along every transition and the last state is an output
// sink, so every node reaches the sink within |Q| rounds. Transitions
// and emissions are derived from a hash of (state, counts), so the
// protocol's behaviour genuinely depends on what the neighbors say —
// which is exactly what exercises the synchronizer's count
// reconstruction.
func randomDeterministicProtocol(seed uint64, nq, nl, b int) *nfsm.RoundProtocol {
	stateNames := make([]string, nq)
	for i := range stateNames {
		stateNames[i] = "q"
	}
	letterNames := make([]string, nl)
	for i := range letterNames {
		letterNames[i] = "l"
	}
	output := make([]bool, nq)
	output[nq-1] = true
	return &nfsm.RoundProtocol{
		Name:        "random",
		StateNames:  stateNames,
		LetterNames: letterNames,
		Input:       []nfsm.State{0},
		Output:      output,
		Initial:     nfsm.Letter(seed % uint64(nl)),
		B:           b,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			if int(q) == nq-1 {
				return []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
			}
			coords := make([]uint64, 0, nl+2)
			coords = append(coords, seed, uint64(q))
			for _, c := range counts {
				coords = append(coords, uint64(c))
			}
			h := xrand.Mix(coords...)
			// Advance by 1 or 2 states (always forward → termination).
			next := int(q) + 1 + int(h%2)
			if next >= nq {
				next = nq - 1
			}
			emit := nfsm.Letter(int(h>>8) % (nl + 1))
			if int(emit) == nl {
				emit = nfsm.NoLetter
			}
			return []nfsm.Move{{Next: nfsm.State(next), Emit: emit}}
		},
	}
}

// TestPropertyCompiledMatchesSyncOnRandomProtocols is the generative
// synchronizer check: for random deterministic protocols on random
// graphs, the asynchronous compiled execution must land every node in
// exactly the state the synchronous execution produces, under multiple
// adversaries.
func TestPropertyCompiledMatchesSyncOnRandomProtocols(t *testing.T) {
	f := func(protoSeed, graphSeed uint64, shape uint8, advPick uint8) bool {
		nq := 3 + int(shape%4)   // 3..6 states
		nl := 2 + int(shape/4%3) // 2..4 letters
		b := 1 + int(shape/16%2) // 1..2
		n := 3 + int(graphSeed%20)
		src := randomDeterministicProtocol(protoSeed, nq, nl, b)
		if err := src.Audit(0); err != nil {
			t.Fatalf("generated protocol invalid: %v", err)
		}
		g := graph.GnpConnected(n, 0.3, xrand.New(graphSeed))

		sres, err := engine.RunSync(src, g, engine.SyncConfig{Seed: 1})
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
		advs := []engine.Adversary{
			engine.Synchronous{},
			engine.UniformRandom{Seed: graphSeed + 1},
			engine.Skew{Seed: graphSeed + 2},
			engine.Overwriter{Seed: graphSeed + 3},
		}
		c, err := CompileRound(src)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		ares, err := engine.RunAsync(c, g, engine.AsyncConfig{
			Seed:      1,
			Adversary: advs[int(advPick)%len(advs)],
		})
		if err != nil {
			t.Fatalf("async: %v", err)
		}
		got := c.DecodeStates(ares.States)
		for v := range sres.States {
			if got[v] != sres.States[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCompiledEngineOnSynchroMachines pins the engine's compiled
// fast path against the synchro machines: both Expand and CompileRound
// produce lazily self-interning machines that must take the engine's
// dynamic (sequential) path, and their runs must be bit-identical to the
// reference engine for random protocols. This is the synchro leg of the
// engine's differential suite.
func TestPropertyCompiledEngineOnSynchroMachines(t *testing.T) {
	f := func(protoSeed, graphSeed uint64, shape uint8) bool {
		nq := 3 + int(shape%4)
		nl := 2 + int(shape/4%3)
		b := 1 + int(shape/16%2)
		n := 3 + int(graphSeed%20)
		src := randomDeterministicProtocol(protoSeed, nq, nl, b)
		g := graph.GnpConnected(n, 0.3, xrand.New(graphSeed))
		e, err := Expand(src)
		if err != nil {
			t.Fatalf("expand: %v", err)
		}
		ref, err := engine.RunSyncRef(e, g, engine.SyncConfig{Seed: 1})
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		// Workers > 1 must be ignored for interning machines, not raced.
		got, err := engine.RunSync(e, g, engine.SyncConfig{Seed: 1, Workers: 4})
		if err != nil {
			t.Fatalf("compiled: %v", err)
		}
		if got.Rounds != ref.Rounds || got.Transmissions != ref.Transmissions {
			return false
		}
		for v := range ref.States {
			if got.States[v] != ref.States[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExpandedMatchesSyncOnRandomProtocols does the same for the
// Theorem 3.4 subround expansion on the synchronous engine.
func TestPropertyExpandedMatchesSyncOnRandomProtocols(t *testing.T) {
	f := func(protoSeed, graphSeed uint64, shape uint8) bool {
		nq := 3 + int(shape%4)
		nl := 2 + int(shape/4%3)
		n := 3 + int(graphSeed%20)
		src := randomDeterministicProtocol(protoSeed, nq, nl, 1)
		g := graph.GnpConnected(n, 0.3, xrand.New(graphSeed))

		sres, err := engine.RunSync(src, g, engine.SyncConfig{Seed: 2})
		if err != nil {
			t.Fatalf("sync: %v", err)
		}
		e, err := Expand(src)
		if err != nil {
			t.Fatalf("expand: %v", err)
		}
		eres, err := engine.RunSync(e, g, engine.SyncConfig{Seed: 3})
		if err != nil {
			t.Fatalf("expanded: %v", err)
		}
		got := e.DecodeStates(eres.States)
		for v := range sres.States {
			if got[v] != sres.States[v] {
				return false
			}
		}
		// The expansion factor is exactly |Σ| for deterministic
		// protocols (same logical round count).
		return eres.Rounds == sres.Rounds*nl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSynchronizationPropertyS1 directly verifies property (S1): during
// an asynchronous compiled run, whenever a node begins simulating round
// t, every neighbor is simulating round t−1, t, or t+1. The engine
// observer counts phase starts per node; Lemma 3.2's pausing analysis
// promises the offsets never exceed one.
func TestSynchronizationPropertyS1(t *testing.T) {
	src := mustMIS(t)
	g := graph.GnpConnected(24, 0.2, xrand.New(41))
	for name, adv := range engine.NamedAdversaries(43) {
		c, err := CompileRound(src)
		if err != nil {
			t.Fatal(err)
		}
		rounds := make([]int, g.N())
		violated := false
		observer := func(time float64, node, step int, state nfsm.State) {
			if !c.IsPhaseStart(state) {
				return
			}
			rounds[node]++
			for _, u := range g.Neighbors(node) {
				d := rounds[node] - rounds[u]
				if d < -1 || d > 1 {
					violated = true
				}
			}
		}
		_, err = engine.RunAsync(c, g, engine.AsyncConfig{
			Seed: 2, Adversary: adv, Observer: observer,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if violated {
			t.Fatalf("%s: synchronization property (S1) violated", name)
		}
	}
}

// mustMIS rebuilds the Figure 1 MIS protocol locally (avoiding an import
// cycle with package mis, which imports synchro).
func mustMIS(t *testing.T) *nfsm.RoundProtocol {
	t.Helper()
	names := []string{"D1", "D2", "U0", "U1", "U2", "W", "L"}
	delay := [][]int{{1}, {2, 3, 4}, {4, 0}, {2}, {3}, nil, nil}
	p := &nfsm.RoundProtocol{
		Name:        "mis-local",
		StateNames:  names,
		LetterNames: names,
		Input:       []nfsm.State{0},
		Output:      []bool{false, false, false, false, false, true, true},
		Initial:     0,
		B:           1,
		Transition: func(q nfsm.State, counts []nfsm.Count) []nfsm.Move {
			stay := []nfsm.Move{{Next: q, Emit: nfsm.NoLetter}}
			if q >= 5 {
				return stay
			}
			for _, d := range delay[q] {
				if counts[d] > 0 {
					return stay
				}
			}
			move := func(next nfsm.State) nfsm.Move {
				return nfsm.Move{Next: next, Emit: nfsm.Letter(next)}
			}
			switch q {
			case 0:
				return []nfsm.Move{move(2)}
			case 1:
				if counts[5] > 0 {
					return []nfsm.Move{move(6)}
				}
				return []nfsm.Move{move(0)}
			default:
				j := q - 2
				heads := 2 + (j+1)%3
				tails := nfsm.State(1)
				if counts[q] == 0 && counts[heads] == 0 {
					tails = 5
				}
				return []nfsm.Move{move(heads), move(tails)}
			}
		},
	}
	if err := p.Audit(0); err != nil {
		t.Fatal(err)
	}
	return p
}
