package synchro

import (
	"fmt"
	"strconv"
	"sync"

	"stoneage/internal/nfsm"
)

// Expanded is the Theorem 3.4 subround expansion of a multi-letter
// RoundProtocol: each source round is subdivided into |Σ| subrounds, each
// dedicated to querying one letter, so every state queries a single
// letter. The construction relies on the alignment of rounds — during the
// |Σ|−1 silent subrounds the ports are guaranteed stable only when all
// nodes advance in lockstep — so an Expanded machine is meant for the
// synchronous engine. (For asynchronous execution use CompileRound, which
// folds the Theorem 3.1 synchronizer in.)
type Expanded struct {
	name string
	src  *nfsm.RoundProtocol
	nl   int
	b    int

	mu     sync.Mutex
	states []*edesc
	index  map[string]nfsm.State
	inputs []nfsm.State
}

// edesc is a compiled subround state: underlying state q, subround k
// (the letter about to be queried), and the counts accumulated for
// letters < k.
type edesc struct {
	q      nfsm.State
	k      int
	accv   []int
	output bool
	rows   [][]nfsm.Move
}

var (
	_ nfsm.Machine     = (*Expanded)(nil)
	_ nfsm.SingleQuery = (*Expanded)(nil)
)

// Expand builds the subround expansion of p.
func Expand(p *nfsm.RoundProtocol) (*Expanded, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("synchro: %w", err)
	}
	e := &Expanded{
		name:  p.Name + "*",
		src:   p,
		nl:    p.NumLetters(),
		b:     p.Bound(),
		index: make(map[string]nfsm.State),
	}
	e.mu.Lock()
	for _, q := range p.Input {
		e.inputs = append(e.inputs, e.intern(&edesc{q: q}))
	}
	e.mu.Unlock()
	return e, nil
}

func (e *Expanded) intern(d *edesc) nfsm.State {
	buf := make([]byte, 0, 32)
	buf = strconv.AppendInt(buf, int64(d.q), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(d.k), 10)
	buf = append(buf, '/')
	for _, x := range d.accv {
		buf = strconv.AppendInt(buf, int64(x), 10)
		buf = append(buf, ',')
	}
	k := string(buf)
	if s, ok := e.index[k]; ok {
		return s
	}
	d.output = e.src.IsOutput(d.q)
	d.rows = make([][]nfsm.Move, e.b+1)
	s := nfsm.State(len(e.states))
	e.states = append(e.states, d)
	e.index[k] = s
	return s
}

// NumStates implements nfsm.Machine.
func (e *Expanded) NumStates() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.states)
}

// NumLetters implements nfsm.Machine: the alphabet is unchanged.
func (e *Expanded) NumLetters() int { return e.nl }

// InitialLetter implements nfsm.Machine.
func (e *Expanded) InitialLetter() nfsm.Letter { return e.src.InitialLetter() }

// Bound implements nfsm.Machine.
func (e *Expanded) Bound() int { return e.b }

// InputState implements nfsm.Machine.
func (e *Expanded) InputState() nfsm.State { return e.inputs[0] }

// Inputs returns the expanded input states, parallel to the source inputs.
func (e *Expanded) Inputs() []nfsm.State {
	return append([]nfsm.State(nil), e.inputs...)
}

// IsOutput implements nfsm.Machine.
func (e *Expanded) IsOutput(s nfsm.State) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.states[s].output
}

// Underlying returns the source state an expanded state simulates.
func (e *Expanded) Underlying(s nfsm.State) nfsm.State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.states[s].q
}

// DecodeStates maps expanded states back to source states.
func (e *Expanded) DecodeStates(states []nfsm.State) []nfsm.State {
	out := make([]nfsm.State, len(states))
	for i, s := range states {
		out[i] = e.Underlying(s)
	}
	return out
}

// QueryLetter implements nfsm.SingleQuery: subround k queries letter k.
func (e *Expanded) QueryLetter(s nfsm.State) nfsm.Letter {
	e.mu.Lock()
	defer e.mu.Unlock()
	return nfsm.Letter(e.states[s].k)
}

// Moves implements nfsm.Machine.
func (e *Expanded) Moves(s nfsm.State, counts []nfsm.Count) []nfsm.Move {
	e.mu.Lock()
	defer e.mu.Unlock()
	d := e.states[s]
	cnt := int(counts[d.k])
	if row := d.rows[cnt]; row != nil {
		return row
	}
	var row []nfsm.Move
	if d.k+1 < e.nl {
		accv := make([]int, d.k+1)
		copy(accv, d.accv)
		accv[d.k] = cnt
		row = []nfsm.Move{{Next: e.intern(&edesc{q: d.q, k: d.k + 1, accv: accv}), Emit: nfsm.NoLetter}}
	} else {
		// Final subround: assemble the full vector and apply the source δ.
		full := make([]nfsm.Count, e.nl)
		for i, v := range d.accv {
			full[i] = nfsm.Count(v)
		}
		full[e.nl-1] = nfsm.Count(cnt)
		srcMoves := e.src.Moves(d.q, full)
		row = make([]nfsm.Move, len(srcMoves))
		for i, mv := range srcMoves {
			row[i] = nfsm.Move{Next: e.intern(&edesc{q: mv.Next}), Emit: mv.Emit}
		}
	}
	d.rows[cnt] = row
	return row
}

// SubroundsPerRound returns the expansion factor, |Σ|.
func (e *Expanded) SubroundsPerRound() int { return e.nl }

// Name returns the expanded protocol's name.
func (e *Expanded) Name() string { return e.name }
